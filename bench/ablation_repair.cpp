// Ablation E: incremental schedule repair (DESIGN.md §14). An adaptive mesh
// rewires a small fraction of its edges per refinement epoch; the pre-§14
// runtime answered every rewire with a full re-inspection (iteration
// repartition + full remap + full localize). The repair path diffs the new
// indirection values against the plan's LocalizeSnapshot, ships only changed
// endpoints through the remap, locates only NOVEL globals (warm
// TranslationCache hits make that nearly free), and splices the CSR schedule
// in place — cost proportional to the delta, not the mesh.
//
// Measured per delta fraction (1% / 5% / 25% of edges rewired):
//   - bit-identicality: the repaired schedule + refs must equal a control
//     localize_many of the plan's own remapped endpoint values (the frozen
//     iteration partition is the repair contract; a fresh inspect() may
//     legally repartition);
//   - locate volume: translation-table queries across one repair must not
//     exceed the novel distinct globals plus the translation-cache misses;
//   - modeled cost: avg virtual seconds per warm repair, monotone in the
//     delta fraction and strictly under a full re-inspection at every
//     fraction;
//   - heap allocations per warm repair per rank (operator-new hook): 0.
// Results go to BENCH_repair.json; every gate failure exits nonzero.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <unordered_set>
#include <vector>

#include "bench/common.hpp"
#include "core/forall.hpp"
#include "dist/translation_cache.hpp"

// --- global allocation counter ----------------------------------------------

namespace {
std::atomic<long long> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace bench = chaos::bench;
namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
using chaos::f64;
using chaos::i64;

namespace {

constexpr int kProcs = 16;
constexpr int kWarmupRepairs = 5;
constexpr int kRepairs = 6;

struct FractionResult {
  int delta_pct = 0;
  int procs = 0;
  i64 refs_total = 0;           // machine-total endpoint references
  i64 novel_total = 0;          // machine-total novel distinct, first repair
  i64 locate_queries = 0;       // machine-total table queries, first repair
  i64 cache_misses = 0;         // machine-total tcache misses, first repair
  f64 repair_modeled_sec = 0.0;   // avg per warm repair, max over ranks
  f64 rebuild_modeled_sec = 0.0;  // one full re-inspection, max over ranks
  f64 allocs_per_repair_per_rank = 0.0;  // warm window only
  f64 wall_seconds = 0.0;                // warm window, host wall
  bool bit_identical = false;
  bool gates_ok = false;  // per-rank CHAOS_CHECKs all passed (else throw)
};

/// Rewires every stride-th edge of the base slice: endpoint 1 on even
/// rewire ordinals, endpoint 2 on odd, to a value that depends on @p epoch
/// so distinct epochs give distinct reference sets. Deterministic in the
/// GLOBAL edge id, so the machine-wide reference multiset is independent of
/// the rank that holds the edge.
void rewire(const dist::Distribution& edist, int rank, i64 nnodes, i64 stride,
            int epoch, std::span<const i64> base1, std::span<const i64> base2,
            std::vector<i64>& out1, std::vector<i64>& out2) {
  out1.assign(base1.begin(), base1.end());
  out2.assign(base2.begin(), base2.end());
  for (i64 l = 0; l < static_cast<i64>(out1.size()); ++l) {
    const i64 g = edist.global_of(rank, l);
    if (g % stride != 0) continue;
    if ((g / stride) % 2 == 0) {
      out1[static_cast<std::size_t>(l)] =
          (base1[static_cast<std::size_t>(l)] + 1 + epoch) % nnodes;
    } else {
      out2[static_cast<std::size_t>(l)] =
          (base2[static_cast<std::size_t>(l)] + 1 + epoch) % nnodes;
    }
  }
}

/// Gate G1: the repaired plan must carry exactly the schedule + refs a full
/// localize of its own (post-repair) remapped endpoint values produces. The
/// iteration partition is frozen by repair, so the control localizes the
/// plan's end1/end2 — not a fresh inspect(), which may legally repartition.
bool schedule_bit_identical(rt::Process& p, const dist::Distribution& d,
                            const core::EdgeLoopPlan& plan) {
  const std::span<const i64> batches[] = {plan.end1, plan.end2};
  const core::LocalizedMany control = core::localize_many(p, d, batches);
  const auto& a = plan.loc.schedule;
  const auto& b = control.schedule;
  return a.send_indices == b.send_indices &&
         a.send_offsets == b.send_offsets &&
         a.recv_offsets == b.recv_offsets && a.nghost == b.nghost &&
         a.nlocal_at_build == b.nlocal_at_build &&
         plan.loc.refs[0] == control.refs[0] &&
         plan.loc.refs[1] == control.refs[1];
}

FractionResult run_fraction(const bench::Workload& w, int delta_pct) {
  FractionResult r;
  r.delta_pct = delta_pct;
  r.procs = kProcs;
  const i64 stride = 100 / delta_pct;

  rt::Machine& machine = bench::pooled_machine(kProcs);
  machine.run([&](rt::Process& p) {
    // Irregular (paged) node distribution, as after a partitioner-driven
    // REDISTRIBUTE: the locate is a real translation-table exchange and the
    // translation cache has something to absorb.
    auto md = dist::Distribution::block(p, w.nnodes);
    std::vector<i64> map_slice(static_cast<std::size_t>(md->my_local_size()));
    for (std::size_t l = 0; l < map_slice.size(); ++l) {
      const i64 g = md->global_of(p.rank(), static_cast<i64>(l));
      map_slice[l] = (g * 11 + 2) % p.nprocs();
    }
    auto d = dist::Distribution::irregular_from_map(p, map_slice, *md);
    auto edist = dist::Distribution::block(p, w.nedges);

    // This rank's endpoint slices: base mesh plus two rewired epochs. The
    // warm window alternates A <-> B so every repair carries a real delta.
    std::vector<i64> s1, s2;
    for (i64 l = 0; l < edist->my_local_size(); ++l) {
      const i64 e = edist->global_of(p.rank(), l);
      s1.push_back(w.e1[static_cast<std::size_t>(e)]);
      s2.push_back(w.e2[static_cast<std::size_t>(e)]);
    }
    std::vector<i64> a1, a2, b1, b2;
    rewire(*edist, p.rank(), w.nnodes, stride, 1, s1, s2, a1, a2);
    rewire(*edist, p.rank(), w.nnodes, stride, 2, s1, s2, b1, b2);

    // RepairMode::On pins the splice path (this bench measures the repair
    // mechanism; the Auto threshold policy is covered by core_repair_test).
    auto cache = std::make_unique<dist::TranslationCache>(1 << 18);
    const core::PlanOptions opts{.flat_locate = true,
                                 .translation_cache = cache.get(),
                                 .repair = core::RepairMode::On};
    auto plan = core::EdgeReductionLoop::inspect(
        p, *edist, s1, s2, *d, core::IterRule::MostLocalReferences, opts);
    r.refs_total =
        rt::allreduce_sum(p, static_cast<i64>(s1.size() + s2.size()));

    // --- gate G2 on the first repair (cache still cold for novel globals):
    // table queries across the repair <= novel distinct + cache misses.
    std::unordered_set<i64> before;
    for (i64 v : plan->end1) before.insert(v);
    for (i64 v : plan->end2) before.insert(v);
    const i64 q0 = d->table()->stats().queries;
    const i64 m0 = cache->stats().misses;
    CHAOS_CHECK(core::EdgeReductionLoop::repair(p, *plan, a1, a2, *d),
                "repair bench: first repair unexpectedly fell back");
    const i64 queries = d->table()->stats().queries - q0;
    const i64 misses = cache->stats().misses - m0;
    std::unordered_set<i64> novel_set;
    for (i64 v : plan->end1) {
      if (!before.contains(v)) novel_set.insert(v);
    }
    for (i64 v : plan->end2) {
      if (!before.contains(v)) novel_set.insert(v);
    }
    const i64 novel = static_cast<i64>(novel_set.size());
    CHAOS_CHECK(queries <= novel + misses,
                "repair bench: repair locate volume exceeds novel distinct "
                "globals + cache misses");
    const i64 novel_total = rt::allreduce_sum(p, novel);
    const i64 queries_total = rt::allreduce_sum(p, queries);
    const i64 misses_total = rt::allreduce_sum(p, misses);

    // Warmup repairs: size every splice/remap buffer in both directions.
    // Plan state after the G2 repair is A; alternate B, A, B, A, B.
    for (int i = 0; i < kWarmupRepairs; ++i) {
      const bool to_b = i % 2 == 0;
      CHAOS_CHECK(core::EdgeReductionLoop::repair(p, *plan, to_b ? b1 : a1,
                                                  to_b ? b2 : a2, *d),
                  "repair bench: warmup repair unexpectedly fell back");
    }

    // --- warm measured window: gates G3 (modeled cost) and G4 (0 allocs).
    rt::barrier(p);
    const long long allocs0 = g_heap_allocs.load(std::memory_order_relaxed);
    const auto w0 = std::chrono::steady_clock::now();
    rt::ClockSection section(p.clock());
    for (int i = 0; i < kRepairs; ++i) {
      // Warmups ended at B (kWarmupRepairs odd), so start back at A.
      const bool to_a = i % 2 == 0;
      CHAOS_CHECK(core::EdgeReductionLoop::repair(p, *plan, to_a ? a1 : b1,
                                                  to_a ? a2 : b2, *d),
                  "repair bench: warm repair unexpectedly fell back");
    }
    rt::barrier(p);
    const long long allocs1 = g_heap_allocs.load(std::memory_order_relaxed);
    const f64 wall =
        std::chrono::duration<f64>(std::chrono::steady_clock::now() - w0)
            .count();
    const f64 repair_avg = rt::allreduce_max(
        p, section.elapsed_sec() / static_cast<f64>(kRepairs));

    // Full re-inspection of the same references: what every one of those
    // repairs would have cost before §14 (and still costs on fallback).
    // Same options, same warm cache — the comparison favors the rebuild.
    rt::ClockSection rebuild_section(p.clock());
    auto rebuilt = core::EdgeReductionLoop::inspect(
        p, *edist, b1, b2, *d, core::IterRule::MostLocalReferences, opts);
    const f64 rebuild_sec = rt::allreduce_max(p, rebuild_section.elapsed_sec());
    CHAOS_CHECK(rebuilt->build.ready(), "repair bench: rebuild failed");

    // --- gate G1: repaired == full localize of the same remapped refs.
    const bool identical = schedule_bit_identical(p, *d, *plan);
    CHAOS_CHECK(identical,
                "repair bench: repaired schedule differs from a full "
                "localize of the same references");

    if (p.is_root()) {
      r.novel_total = novel_total;
      r.locate_queries = queries_total;
      r.cache_misses = misses_total;
      r.repair_modeled_sec = repair_avg;
      r.rebuild_modeled_sec = rebuild_sec;
      r.allocs_per_repair_per_rank =
          static_cast<f64>(allocs1 - allocs0) /
          (static_cast<f64>(kRepairs) * static_cast<f64>(kProcs));
      r.wall_seconds = wall;
      r.bit_identical = identical;
      r.gates_ok = true;
    }
  });
  return r;
}

bool write_json(const std::vector<FractionResult>& results) {
  std::FILE* f = std::fopen("BENCH_repair.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_repair.json for writing\n");
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"schedule_repair\",\n");
  std::fprintf(f, "  \"procs\": %d,\n", kProcs);
  std::fprintf(f, "  \"warm_repairs\": %d,\n", kRepairs);
  std::fprintf(f, "  \"configs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const f64 speedup = r.repair_modeled_sec > 0
                            ? r.rebuild_modeled_sec / r.repair_modeled_sec
                            : 0.0;
    std::fprintf(f,
                 "    {\"delta_pct\": %d, \"procs\": %d, "
                 "\"refs_total\": %lld, \"novel_distinct_total\": %lld, "
                 "\"locate_queries_first_repair\": %lld, "
                 "\"cache_misses_first_repair\": %lld, "
                 "\"repair_modeled_seconds\": %.6f, "
                 "\"rebuild_modeled_seconds\": %.6f, "
                 "\"repair_speedup_vs_rebuild\": %.2f, "
                 "\"allocs_per_warm_repair_per_rank\": %.2f, "
                 "\"wall_seconds\": %.6f, "
                 "\"bit_identical\": %s}%s\n",
                 r.delta_pct, r.procs, static_cast<long long>(r.refs_total),
                 static_cast<long long>(r.novel_total),
                 static_cast<long long>(r.locate_queries),
                 static_cast<long long>(r.cache_misses), r.repair_modeled_sec,
                 r.rebuild_modeled_sec, speedup,
                 r.allocs_per_repair_per_rank, r.wall_seconds,
                 r.bit_identical ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main() {
  std::printf("Ablation E: incremental schedule repair vs full re-inspection "
              "(DESIGN.md §14)\n");
  std::printf("10K mesh, P=%d, %d warm repairs per delta fraction, "
              "barrier-fenced; heap allocations counted globally\n\n",
              kProcs, kRepairs);

  const auto w = bench::workload_mesh_10k();
  std::vector<FractionResult> results;
  for (const int pct : {1, 5, 25}) {
    results.push_back(run_fraction(w, pct));
    const auto& r = results.back();
    std::printf("delta %2d%%  %8lld novel  repair %8.4f s  rebuild %8.4f s  "
                "(%.1fx)  %6.2f allocs/repair/rank  %s\n",
                r.delta_pct, static_cast<long long>(r.novel_total),
                r.repair_modeled_sec, r.rebuild_modeled_sec,
                r.repair_modeled_sec > 0
                    ? r.rebuild_modeled_sec / r.repair_modeled_sec
                    : 0.0,
                r.allocs_per_repair_per_rank,
                r.bit_identical ? "bit-identical" : "DIVERGED");
    std::fflush(stdout);
  }

  if (write_json(results)) std::printf("\nwrote BENCH_repair.json\n");

  // Hard gates this PR claims (per-rank locate-volume and bit-identicality
  // gates already threw inside run_fraction if violated).
  int rc = 0;
  for (const auto& r : results) {
    if (!r.bit_identical) {
      std::fprintf(stderr,
                   "FAIL: delta %d%% repaired schedule is not bit-identical "
                   "to a full localize of the same references\n",
                   r.delta_pct);
      rc = 1;
    }
    if (r.allocs_per_repair_per_rank != 0.0) {
      std::fprintf(stderr,
                   "FAIL: delta %d%% performed %.2f heap allocations per "
                   "warm repair per rank (want 0)\n",
                   r.delta_pct, r.allocs_per_repair_per_rank);
      rc = 1;
    }
    if (r.repair_modeled_sec >= r.rebuild_modeled_sec) {
      std::fprintf(stderr,
                   "FAIL: delta %d%% modeled repair cost %.6f s is not under "
                   "the full re-inspection's %.6f s\n",
                   r.delta_pct, r.repair_modeled_sec, r.rebuild_modeled_sec);
      rc = 1;
    }
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (results[i].repair_modeled_sec + 1e-12 <
        results[i - 1].repair_modeled_sec) {
      std::fprintf(stderr,
                   "FAIL: modeled repair cost is not monotone in the delta "
                   "fraction (%d%%: %.6f s > %d%%: %.6f s)\n",
                   results[i - 1].delta_pct,
                   results[i - 1].repair_modeled_sec, results[i].delta_pct,
                   results[i].repair_modeled_sec);
      rc = 1;
    }
  }
  if (!results.empty() &&
      results.front().repair_modeled_sec * 1.5 >=
          results.back().repair_modeled_sec) {
    std::fprintf(stderr,
                 "FAIL: repair cost barely moves with the delta (1%%: %.6f s "
                 "vs 25%%: %.6f s) — cost is not delta-proportional\n",
                 results.front().repair_modeled_sec,
                 results.back().repair_modeled_sec);
    rc = 1;
  }
  if (rc == 0) {
    std::printf("\nPASS: repairs bit-identical to full localize, locate "
                "volume capped at novel+misses, modeled cost scaling with "
                "the delta and under a full re-inspection at every "
                "fraction, 0 heap allocations per warm repair\n");
  }
  return rc;
}
