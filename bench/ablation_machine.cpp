// Ablation D: runtime substrate. Every locate round, remap, and reuse-guard
// check funnels through rt/ collectives, so the machine they run on has to
// scale. Two designs of the synchronization core:
//   central       — the seed's barrier: one mutex + condvar, sense-reversing,
//                   O(P) wakeups under a single contended lock (replicated
//                   here verbatim as the baseline);
//   fused_tree    — this PR: the atomics-based flat combining barrier with
//                   the clock max-reduction fused into its arrival fold and
//                   a spin/yield/futex waiting ladder.
// Measured: raw barrier phases per host wall second at P=16 and P=64, raw
// barrier phases consumed by each collective (the fused design must need at
// most 2 where the seed spent 3-5), and run() dispatch cost of the pooled
// worker threads vs a spawn/join per call. Results go to BENCH_machine.json;
// the two PR gates (>=2x barrier throughput at P=64, <=2 phases per
// collective) are enforced here so CI fails loudly.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rt/collectives.hpp"
#include "rt/machine.hpp"

namespace rt = chaos::rt;
using chaos::f64;
using chaos::i64;

namespace {

// --- the seed's central barrier, kept verbatim as the baseline --------------

class CentralBarrier {
 public:
  explicit CentralBarrier(int nprocs) : nprocs_(nprocs) {}

  void wait() {
    std::unique_lock lock(mutex_);
    const bool my_sense = sense_;
    if (++arrived_ == nprocs_) {
      arrived_ = 0;
      sense_ = !sense_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return sense_ != my_sense; });
  }

 private:
  int nprocs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  bool sense_ = false;
};

// --- barrier throughput ------------------------------------------------------

struct BarrierResult {
  std::string design;  // "central" or "fused_tree"
  int procs = 0;
  int iters = 0;
  f64 wall_seconds = 0.0;
  f64 barriers_per_sec = 0.0;
};

/// @p iters fenced barrier phases on the seed's central design, driven by
/// raw threads exactly like the seed's Machine drove them.
BarrierResult bench_central(int procs, int iters) {
  CentralBarrier bar(procs);
  f64 wall = 0.0;
  auto body = [&](int rank) {
    bar.wait();  // line everyone up outside the timed window
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) bar.wait();
    if (rank == 0) {
      wall = std::chrono::duration<f64>(std::chrono::steady_clock::now() - t0)
                 .count();
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(procs));
  for (int r = 0; r < procs; ++r) threads.emplace_back(body, r);
  for (auto& t : threads) t.join();
  return {"central", procs, iters, wall,
          wall > 0 ? static_cast<f64>(iters) / wall : 0.0};
}

BarrierResult bench_fused_tree(int procs, int iters) {
  rt::Machine machine(procs);
  f64 wall = 0.0;
  machine.run([&](rt::Process& p) {
    p.barrier_sync_only();
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) p.barrier_sync_only();
    if (p.rank() == 0) {
      wall = std::chrono::duration<f64>(std::chrono::steady_clock::now() - t0)
                 .count();
    }
  });
  return {"fused_tree", procs, iters, wall,
          wall > 0 ? static_cast<f64>(iters) / wall : 0.0};
}

// --- raw phases per collective ----------------------------------------------

struct PhaseCount {
  std::string collective;
  i64 phases = 0;
};

std::vector<PhaseCount> measure_phases(int procs) {
  rt::Machine machine(procs);
  std::vector<PhaseCount> out;  // written by rank 0 only
  machine.run([&](rt::Process& p) {
    auto count = [&](const char* name, auto&& fn) {
      const i64 before = p.stats().barriers;
      fn();
      if (p.is_root()) out.push_back({name, p.stats().barriers - before});
    };
    const int P = p.nprocs();
    count("barrier", [&] { rt::barrier(p); });
    count("broadcast", [&] { (void)rt::broadcast(p, i64{7}); });
    count("broadcast_vec", [&] {
      std::vector<f64> v(8, 1.5);
      (void)rt::broadcast_vec(p, v);
    });
    count("allreduce", [&] { (void)rt::allreduce_sum(p, i64{1}); });
    count("allreduce_vec", [&] {
      std::vector<f64> v(4, static_cast<f64>(p.rank()));
      (void)rt::allreduce_vec(p, v, std::plus<>{});
    });
    count("exscan", [&] { (void)rt::exscan_sum(p, i64{1}); });
    count("allgather", [&] { (void)rt::allgather(p, i64{p.rank()}); });
    count("allgatherv", [&] {
      std::vector<i64> mine(2, p.rank());
      (void)rt::allgatherv<i64>(p, mine);
    });
    count("alltoallv", [&] {
      std::vector<std::vector<i64>> send(static_cast<std::size_t>(P));
      for (auto& s : send) s = {1, 2};
      (void)rt::alltoallv(p, send);
    });
    count("alltoall", [&] {
      std::vector<i64> send(static_cast<std::size_t>(P), 3);
      std::vector<i64> recv(static_cast<std::size_t>(P), 0);
      rt::alltoall<i64>(p, send, recv);
    });
    count("alltoallv_flat", [&] {
      std::vector<i64> offsets(static_cast<std::size_t>(P) + 1, 0);
      for (int r = 1; r <= P; ++r) {
        offsets[static_cast<std::size_t>(r)] = r;
      }
      std::vector<f64> send(static_cast<std::size_t>(P), 1.0);
      std::vector<f64> recv(static_cast<std::size_t>(P), 0.0);
      rt::alltoallv_flat<f64>(p, send, offsets, recv, offsets);
    });
    count("gatherv", [&] {
      std::vector<i64> mine(2, p.rank());
      (void)rt::gatherv<i64>(p, mine);
    });
    count("scatterv", [&] {
      std::vector<std::vector<i64>> blocks;
      if (p.is_root()) {
        blocks.assign(static_cast<std::size_t>(P), {i64{4}});
      }
      (void)rt::scatterv(p, blocks);
    });
  });
  return out;
}

// --- run() dispatch: pooled workers vs spawn/join per call ------------------

struct DispatchResult {
  f64 pooled_us_per_run = 0.0;
  f64 spawned_us_per_run = 0.0;
};

DispatchResult bench_dispatch(int procs, int runs) {
  DispatchResult r;
  {
    rt::Machine machine(procs);
    machine.run([](rt::Process&) {});  // warm the pool
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < runs; ++i) machine.run([](rt::Process&) {});
    r.pooled_us_per_run =
        std::chrono::duration<f64>(std::chrono::steady_clock::now() - t0)
            .count() *
        1e6 / runs;
  }
  {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < runs; ++i) {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(procs));
      for (int t = 0; t < procs; ++t) threads.emplace_back([] {});
      for (auto& t : threads) t.join();
    }
    r.spawned_us_per_run =
        std::chrono::duration<f64>(std::chrono::steady_clock::now() - t0)
            .count() *
        1e6 / runs;
  }
  return r;
}

bool write_json(const std::vector<BarrierResult>& barriers,
                const std::vector<PhaseCount>& phases,
                const DispatchResult& dispatch, int dispatch_procs) {
  std::FILE* f = std::fopen("BENCH_machine.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_machine.json for writing\n");
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"machine_substrate\",\n");
  std::fprintf(f, "  \"barrier\": [\n");
  for (std::size_t i = 0; i < barriers.size(); ++i) {
    const auto& b = barriers[i];
    f64 speedup = 0.0;
    for (const auto& base : barriers) {
      if (base.design == "central" && base.procs == b.procs &&
          base.barriers_per_sec > 0) {
        speedup = b.barriers_per_sec / base.barriers_per_sec;
      }
    }
    std::fprintf(f,
                 "    {\"design\": \"%s\", \"procs\": %d, \"iters\": %d, "
                 "\"wall_seconds\": %.6f, \"barriers_per_sec\": %.0f, "
                 "\"speedup_vs_central\": %.3f}%s\n",
                 b.design.c_str(), b.procs, b.iters, b.wall_seconds,
                 b.barriers_per_sec, speedup,
                 i + 1 < barriers.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"collective_phases\": [\n");
  for (std::size_t i = 0; i < phases.size(); ++i) {
    std::fprintf(f, "    {\"collective\": \"%s\", \"phases\": %lld}%s\n",
                 phases[i].collective.c_str(),
                 static_cast<long long>(phases[i].phases),
                 i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"dispatch\": {\"procs\": %d, "
               "\"pooled_us_per_run\": %.2f, \"spawned_us_per_run\": %.2f}\n",
               dispatch_procs, dispatch.pooled_us_per_run,
               dispatch.spawned_us_per_run);
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main() {
  std::printf("Ablation D: runtime substrate — central mutex/condvar barrier "
              "vs fused combining barrier\n\n");

  std::vector<BarrierResult> barriers;
  // Best of three repetitions per design: shared CI runners inject
  // scheduler noise, and the gate below should measure the barrier, not
  // the neighbors.
  constexpr int kReps = 3;
  auto best_of = [](auto&& bench, int procs, int iters) {
    auto best = bench(procs, iters);
    for (int rep = 1; rep < kReps; ++rep) {
      auto r = bench(procs, iters);
      if (r.barriers_per_sec > best.barriers_per_sec) best = r;
    }
    return best;
  };
  for (const int procs : {16, 64}) {
    const int iters = procs >= 64 ? 2000 : 10000;
    barriers.push_back(best_of(bench_central, procs, iters));
    barriers.push_back(best_of(bench_fused_tree, procs, iters));
    for (std::size_t i = barriers.size() - 2; i < barriers.size(); ++i) {
      const auto& b = barriers[i];
      std::printf("%-14s P=%-3d %9.0f barriers/s (%d iters, %.3f s)\n",
                  b.design.c_str(), b.procs, b.barriers_per_sec, b.iters,
                  b.wall_seconds);
    }
  }

  const auto phases = measure_phases(8);
  std::printf("\nraw barrier phases per collective (P=8):\n");
  for (const auto& pc : phases) {
    std::printf("  %-16s %lld\n", pc.collective.c_str(),
                static_cast<long long>(pc.phases));
  }

  const int dispatch_procs = 16;
  const auto dispatch = bench_dispatch(dispatch_procs, 200);
  std::printf("\nrun() dispatch at P=%d: pooled %.1f us/run, spawn/join "
              "%.1f us/run\n",
              dispatch_procs, dispatch.pooled_us_per_run,
              dispatch.spawned_us_per_run);

  if (write_json(barriers, phases, dispatch, dispatch_procs)) {
    std::printf("\nwrote BENCH_machine.json\n");
  }

  // Hard gates this PR claims (checked here so CI smoke fails loudly).
  int rc = 0;
  f64 central64 = 0.0, tree64 = 0.0;
  for (const auto& b : barriers) {
    if (b.procs != 64) continue;
    (b.design == "central" ? central64 : tree64) = b.barriers_per_sec;
  }
  if (central64 <= 0 || tree64 < 2.0 * central64) {
    std::fprintf(stderr,
                 "FAIL: fused-tree barrier at P=64 is %.0f/s, under 2x "
                 "the central baseline %.0f/s\n",
                 tree64, central64);
    rc = 1;
  }
  for (const auto& pc : phases) {
    if (pc.phases > 2) {
      std::fprintf(stderr,
                   "FAIL: collective %s consumed %lld raw barrier phases "
                   "(want <= 2)\n",
                   pc.collective.c_str(),
                   static_cast<long long>(pc.phases));
      rc = 1;
    }
  }
  if (rc == 0) {
    std::printf("\nPASS: >=2x barrier throughput at P=64 and <=2 phases per "
                "collective\n");
  }
  return rc;
}
