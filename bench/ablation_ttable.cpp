// Ablation B: translation-table organization. PARTI/CHAOS distributes the
// global-to-local translation table page-wise; the alternative is full
// replication (O(N) memory per process, zero-communication dereference).
// This bench sweeps page size and replication on the 53K mesh inspector.
#include <cstdio>

#include "bench/common.hpp"

namespace bench = chaos::bench;
using chaos::f64;
using chaos::i64;

int main() {
  std::printf("Ablation B: translation-table page size / replication\n");
  std::printf("53K mesh @ 16 procs, RCB pipeline, inspector phase "
              "(modeled seconds) + host wall clock\n\n");

  const auto w = bench::workload_mesh_53k();
  std::printf("%-24s %14s %14s %14s\n", "table organization",
              "inspector (s)", "remap (s)", "wall (s)");

  for (i64 page : {64, 1024, 4096, 32768}) {
    bench::PipelineConfig cfg;
    cfg.partitioner = "RCB";
    cfg.iterations = 1;
    cfg.ttable_page_size = page;
    const auto r = bench::run_hand_pipeline(16, w, cfg);
    std::printf("%-24s %14.2f %14.2f %14.2f\n",
                ("distributed, page=" + std::to_string(page)).c_str(),
                r.inspector, r.remap, r.wall_seconds);
    std::fflush(stdout);
  }
  {
    bench::PipelineConfig cfg;
    cfg.partitioner = "RCB";
    cfg.iterations = 1;
    cfg.ttable_replicated = true;
    // Replication is plumbed through irregular_from_map inside the mapper;
    // exercise it via a direct run with the replicated flag.
    // (The hand pipeline honors ttable_page_size only; replicated mode is
    // compared through the dist-layer microbench below.)
    std::printf("\nreplicated-table dereference vs distributed (dist layer, "
                "53K indices, 16 procs):\n");
  }

  // Direct microcomparison at the dist layer.
  {
    namespace rt = chaos::rt;
    namespace dist = chaos::dist;
    for (bool repl : {false, true}) {
      f64 modeled = 0.0, wall = 0.0;
      const auto t0 = std::chrono::steady_clock::now();
      rt::Machine machine(16);
      machine.run([&](rt::Process& p) {
        auto md = dist::Distribution::block(p, w.nnodes);
        std::vector<i64> slice(static_cast<std::size_t>(md->my_local_size()));
        for (std::size_t l = 0; l < slice.size(); ++l) {
          const i64 g = md->global_of(p.rank(), static_cast<i64>(l));
          slice[l] = (g * 13 + 5) % p.nprocs();
        }
        auto d = dist::Distribution::irregular_from_map(p, slice, *md, 4096,
                                                        repl);
        // Dereference every edge endpoint once (the inspector's traffic).
        std::vector<i64> queries;
        auto edist = dist::Distribution::block(p, w.nedges);
        for (i64 l = 0; l < edist->my_local_size(); ++l) {
          const i64 e = edist->global_of(p.rank(), l);
          queries.push_back(w.e1[static_cast<std::size_t>(e)]);
          queries.push_back(w.e2[static_cast<std::size_t>(e)]);
        }
        rt::ClockSection section(p.clock());
        auto entries = d->locate(p, queries);
        (void)entries;
        const f64 t = rt::allreduce_max(p, section.elapsed_sec());
        if (p.is_root()) modeled = t;
      });
      wall = std::chrono::duration<f64>(std::chrono::steady_clock::now() - t0)
                 .count();
      std::printf("  %-22s modeled %8.3f s   wall %6.2f s   memory/proc "
                  "%s\n",
                  repl ? "replicated" : "distributed (paged)", modeled, wall,
                  repl ? "O(N) entries" : "O(N/P) entries");
      std::fflush(stdout);
    }
  }
  std::printf("\nshape check: page size barely matters (queries batch per "
              "home anyway); replication removes the dereference exchange at "
              "O(N) memory per process — the PARTI trade-off.\n");
  return 0;
}
