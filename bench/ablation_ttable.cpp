// Ablation B: translation-table organization + dereference protocol.
// PARTI/CHAOS distributes the global-to-local translation table page-wise;
// the alternative is full replication (O(N) memory per process,
// zero-communication dereference). Orthogonally, two dereference protocols:
//   nested — the historical entry point: per-home request vectors, one
//            request/response round (two nested alltoallv), buffers
//            reallocated per call;
//   flat   — this PR: dereference_flat through a reusable
//            DereferenceWorkspace — counts alltoall + two flat CSR
//            exchanges (3 collectives), ZERO heap allocations on a warm
//            repeat call.
// Measurements per config: per-locate collective rounds, heap allocations
// per warm locate (operator-new hook; flat must be exactly 0 — a hard gate),
// modeled seconds, and host wall throughput — written to BENCH_ttable.json
// so the perf trajectory of the hot path is tracked from PR to PR. The full
// RCB inspector pipeline page-size sweep rides along for context.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "dist/dereference_workspace.hpp"

// --- global allocation counter ----------------------------------------------

namespace {
std::atomic<long long> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace bench = chaos::bench;
namespace rt = chaos::rt;
namespace dist = chaos::dist;
using chaos::f64;
using chaos::i64;

namespace {

struct ConfigResult {
  std::string mode;     // "paged" or "replicated"
  std::string variant;  // "nested" or "flat"
  i64 page_size = 0;
  i64 locate_calls = 0;
  i64 alltoallv_rounds = 0;   // nested: rank-0 request/response rounds
  i64 flat_collectives = 0;   // flat: rank-0 collectives (3 per paged call)
  i64 queries_total = 0;      // machine-total queries over all locate calls
  f64 allocs_per_locate = 0;  // machine-wide heap allocations per warm call
  f64 modeled_seconds = 0.0;
  f64 wall_seconds = 0.0;         ///< whole run incl. machine + table build
  f64 locate_wall_seconds = 0.0;  ///< just the locate loop (barrier-fenced)
  f64 queries_per_sec_wall = 0.0;
};

constexpr int kProcs = 16;
constexpr int kLocateCalls = 4;

ConfigResult run_config(const bench::Workload& w, i64 page, bool repl,
                        bool flat) {
  ConfigResult r;
  r.mode = repl ? "replicated" : "paged";
  r.variant = flat ? "flat" : "nested";
  r.page_size = page;
  const auto t0 = std::chrono::steady_clock::now();
  rt::Machine machine(kProcs);
  machine.run([&](rt::Process& p) {
    // The inspector's real layout: an irregular map scattering nodes.
    auto md = dist::Distribution::block(p, w.nnodes);
    std::vector<i64> slice(static_cast<std::size_t>(md->my_local_size()));
    for (std::size_t l = 0; l < slice.size(); ++l) {
      const i64 g = md->global_of(p.rank(), static_cast<i64>(l));
      slice[l] = (g * 13 + 5) % p.nprocs();
    }
    auto d = dist::Distribution::irregular_from_map(p, slice, *md, page, repl);

    // The inspector's traffic: dereference every local edge endpoint.
    std::vector<i64> queries;
    auto edist = dist::Distribution::block(p, w.nedges);
    queries.reserve(static_cast<std::size_t>(2 * edist->my_local_size()));
    for (i64 l = 0; l < edist->my_local_size(); ++l) {
      const i64 e = edist->global_of(p.rank(), l);
      queries.push_back(w.e1[static_cast<std::size_t>(e)]);
      queries.push_back(w.e2[static_cast<std::size_t>(e)]);
    }

    // Flat-path state: caller-owned answers + scratch, warmed by one call
    // (which both sizes every workspace buffer and checks the answers
    // against the nested protocol — the two entry points must agree).
    std::vector<dist::Entry> entries;
    dist::DereferenceWorkspace ws;
    if (flat) {
      d->locate_flat_into(p, queries, entries, ws);
      const auto nested = d->locate(p, queries);
      for (std::size_t i = 0; i < nested.size(); ++i) {
        CHAOS_CHECK(entries[i].proc == nested[i].proc &&
                        entries[i].local == nested[i].local,
                    "ablation_ttable: flat and nested dereference disagree");
      }
    }

    const auto& table = *d->table();
    const i64 rounds_before = table.stats().alltoallv_rounds;
    const i64 flat_before = table.stats().flat_collectives;
    // Barrier-fence the loop so the wall measurement covers only the
    // dereference traffic, not machine construction or the table build —
    // and so the allocation window covers exactly the warm locate calls.
    rt::barrier(p);
    const long long allocs0 = g_heap_allocs.load(std::memory_order_relaxed);
    const auto w0 = std::chrono::steady_clock::now();
    rt::ClockSection section(p.clock());
    for (int k = 0; k < kLocateCalls; ++k) {
      if (flat) {
        d->locate_flat_into(p, queries, entries, ws);
      } else {
        auto nested = d->locate(p, queries);
        (void)nested;
      }
    }
    rt::barrier(p);
    const long long allocs1 = g_heap_allocs.load(std::memory_order_relaxed);
    const f64 modeled = rt::allreduce_max(p, section.elapsed_sec());
    if (p.is_root()) {
      r.modeled_seconds = modeled;
      r.locate_calls = kLocateCalls;
      r.alltoallv_rounds = table.stats().alltoallv_rounds - rounds_before;
      r.flat_collectives = table.stats().flat_collectives - flat_before;
      r.allocs_per_locate = static_cast<f64>(allocs1 - allocs0) /
                            static_cast<f64>(kLocateCalls);
      r.locate_wall_seconds =
          std::chrono::duration<f64>(std::chrono::steady_clock::now() - w0)
              .count();
    }
  });
  r.wall_seconds =
      std::chrono::duration<f64>(std::chrono::steady_clock::now() - t0)
          .count();
  r.queries_total = 2 * w.nedges * kLocateCalls;  // every endpoint, each call
  r.queries_per_sec_wall =
      r.locate_wall_seconds > 0
          ? static_cast<f64>(r.queries_total) / r.locate_wall_seconds
          : 0.0;  // under clock resolution: report 0, not a fake rate
  return r;
}

bool write_json(const bench::Workload& w,
                const std::vector<ConfigResult>& results) {
  std::FILE* f = std::fopen("BENCH_ttable.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_ttable.json for writing\n");
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"ttable_dereference\",\n");
  std::fprintf(f, "  \"workload\": \"%s\",\n", w.name.c_str());
  std::fprintf(f, "  \"nnodes\": %lld,\n", static_cast<long long>(w.nnodes));
  std::fprintf(f, "  \"nedges\": %lld,\n", static_cast<long long>(w.nedges));
  std::fprintf(f, "  \"procs\": %d,\n", kProcs);
  std::fprintf(f, "  \"locate_calls\": %d,\n", kLocateCalls);
  std::fprintf(f, "  \"configs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const bool flat = r.variant == "flat";
    const i64 rounds = flat ? r.flat_collectives : r.alltoallv_rounds;
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"variant\": \"%s\", "
                 "\"page_size\": %lld, "
                 "\"alltoallv_rounds\": %lld, "
                 "\"rounds_per_locate\": %.1f, "
                 "\"collectives_per_locate\": %.1f, "
                 "\"allocs_per_locate\": %.2f, "
                 "\"queries_total\": %lld, "
                 "\"modeled_seconds\": %.6f, "
                 "\"locate_wall_seconds\": %.6f, \"wall_seconds\": %.6f, "
                 "\"queries_per_sec_wall\": %.0f}%s\n",
                 r.mode.c_str(), r.variant.c_str(),
                 static_cast<long long>(r.page_size),
                 static_cast<long long>(r.alltoallv_rounds),
                 static_cast<f64>(r.alltoallv_rounds) /
                     static_cast<f64>(r.locate_calls),
                 static_cast<f64>(rounds) / static_cast<f64>(r.locate_calls),
                 r.allocs_per_locate, static_cast<long long>(r.queries_total),
                 r.modeled_seconds, r.locate_wall_seconds, r.wall_seconds,
                 r.queries_per_sec_wall,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main() {
  std::printf("Ablation B: translation-table page size / replication / "
              "dereference protocol\n");
  std::printf("53K mesh @ %d procs (modeled seconds + host wall clock; heap "
              "allocations counted globally)\n\n",
              kProcs);

  const auto w = bench::workload_mesh_53k();

  // --- 1. dist-layer dereference microbench -> BENCH_ttable.json -----------
  std::printf("%-24s %10s %12s %12s %14s %12s %16s\n", "table organization",
              "rounds", "coll/loc", "allocs/loc", "modeled (s)", "loc wall (s)",
              "queries/s (wall)");
  std::vector<ConfigResult> results;
  for (const i64 page : {i64{1}, i64{64}, i64{4096}}) {
    results.push_back(run_config(w, page, /*repl=*/false, /*flat=*/false));
  }
  // Page size is meaningless for a replicated table; report 0 in the JSON
  // so consumers never group it with the paged pg=4096 row. (The table
  // itself still needs a legal page_size >= 1 to build.)
  {
    auto repl = run_config(w, 4096, /*repl=*/true, /*flat=*/false);
    repl.page_size = 0;
    results.push_back(std::move(repl));
  }
  // The flat rows: same organizations through dereference_flat.
  for (const i64 page : {i64{1}, i64{64}, i64{4096}}) {
    results.push_back(run_config(w, page, /*repl=*/false, /*flat=*/true));
  }
  {
    auto repl = run_config(w, 4096, /*repl=*/true, /*flat=*/true);
    repl.page_size = 0;
    results.push_back(std::move(repl));
  }
  for (const auto& r : results) {
    const bool flat = r.variant == "flat";
    std::string label =
        r.mode == "paged" ? "paged, pg=" + std::to_string(r.page_size)
                          : "replicated";
    if (flat) label += " (flat)";
    const i64 rounds = flat ? r.flat_collectives : r.alltoallv_rounds;
    std::printf("%-24s %10lld %12.1f %12.2f %14.3f %12.3f %16.0f\n",
                label.c_str(), static_cast<long long>(rounds),
                static_cast<f64>(rounds) / static_cast<f64>(r.locate_calls),
                r.allocs_per_locate, r.modeled_seconds, r.locate_wall_seconds,
                r.queries_per_sec_wall);
    std::fflush(stdout);
  }
  if (write_json(w, results)) {
    std::printf("\nwrote BENCH_ttable.json\n");
  }

  // --- 2. pipeline context: inspector phase under the paged table ----------
  std::printf("\nRCB inspector pipeline, page-size sweep:\n");
  std::printf("%-24s %14s %14s %14s\n", "table organization",
              "inspector (s)", "remap (s)", "wall (s)");
  for (const i64 page : {i64{64}, i64{1024}, i64{4096}, i64{32768}}) {
    bench::PipelineConfig cfg;
    cfg.partitioner = "RCB";
    cfg.iterations = 1;
    cfg.ttable_page_size = page;
    const auto r = bench::run_hand_pipeline(kProcs, w, cfg);
    std::printf("%-24s %14.2f %14.2f %14.2f\n",
                ("distributed, page=" + std::to_string(page)).c_str(),
                r.inspector, r.remap, r.wall_seconds);
    std::fflush(stdout);
  }

  // Hard gates this PR claims (checked here so CI smoke fails loudly).
  int rc = 0;
  for (const auto& r : results) {
    if (r.variant != "flat") continue;
    if (r.allocs_per_locate != 0.0) {
      std::fprintf(stderr,
                   "FAIL: %s flat dereference performed %.2f heap allocations "
                   "per warm locate (want 0)\n",
                   r.mode.c_str(), r.allocs_per_locate);
      rc = 1;
    }
    const f64 per_call = static_cast<f64>(r.flat_collectives) /
                         static_cast<f64>(r.locate_calls);
    const f64 want = r.mode == "paged" ? 3.0 : 0.0;
    if (per_call != want) {
      std::fprintf(stderr,
                   "FAIL: %s flat dereference spent %.1f collectives per "
                   "locate (want %.1f)\n",
                   r.mode.c_str(), per_call, want);
      rc = 1;
    }
  }
  if (rc == 0) {
    std::printf("\nPASS: flat dereference is allocation-free on warm locates "
                "(paged and replicated), at exactly 3 collectives per paged "
                "call and 0 replicated\n");
  }
  std::printf("\nshape check: page size barely matters (queries batch per "
              "home anyway); replication removes the dereference exchange at "
              "O(N) memory per process — the PARTI trade-off. The flat "
              "protocol trades one extra (cheap) counts collective for "
              "allocation-free warm locates.\n");
  return rc;
}
