// Table 1 of the paper: executor loop over 100 iterations WITH vs WITHOUT
// communication-schedule reuse; distributed arrays decomposed irregularly
// with recursive binary (coordinate) dissection.
//
//   10K mesh  @ P = 4, 8, 16
//   53K mesh  @ P = 16, 32, 64
//   648 atoms @ P = 4, 8, 16
#include <cstdio>

#include "bench/common.hpp"

namespace bench = chaos::bench;
using chaos::f64;

namespace {

struct Config {
  const bench::Workload* w;
  int procs;
  f64 paper_no_reuse;
  f64 paper_reuse;
};

}  // namespace

int main() {
  std::printf("Table 1: communication schedule reuse (100 iterations, RCB "
              "distribution)\n");

  const auto mesh10k = bench::workload_mesh_10k();
  const auto mesh53k = bench::workload_mesh_53k();
  const auto md = bench::workload_md_648();

  const Config configs[] = {
      {&mesh10k, 4, 400.0, 17.6},  {&mesh10k, 8, 214.0, 10.8},
      {&mesh10k, 16, 123.0, 7.7},  {&mesh53k, 16, 668.0, 30.4},
      {&mesh53k, 32, 398.0, 23.0}, {&mesh53k, 64, 239.0, 17.4},
      {&md, 4, 707.0, 15.2},       {&md, 8, 384.0, 9.7},
      {&md, 16, 227.0, 8.0},
  };

  std::printf("\n%-12s %5s | %21s | %21s | %s\n", "workload", "procs",
              "no reuse (meas/paper)", "reuse (meas/paper)",
              "speedup (meas/paper)");
  std::printf("%.*s\n", 100,
              "----------------------------------------------------------------"
              "------------------------------------");

  bench::RobustnessTally tally;
  for (const auto& c : configs) {
    bench::PipelineConfig cfg;
    cfg.partitioner = "RCB";
    cfg.iterations = 100;

    cfg.schedule_reuse = true;
    const auto reuse = bench::run_hand_pipeline(c.procs, *c.w, cfg);
    cfg.schedule_reuse = false;
    const auto no_reuse = bench::run_hand_pipeline(c.procs, *c.w, cfg);
    tally.add(reuse);
    tally.add(no_reuse);

    std::printf("%-12s %5d | %9.1f %9.1f   | %9.1f %9.1f   | %6.1fx %6.1fx\n",
                c.w->name.c_str(), c.procs, no_reuse.total(),
                c.paper_no_reuse, reuse.total(), c.paper_reuse,
                no_reuse.total() / reuse.total(),
                c.paper_no_reuse / c.paper_reuse);
    std::fflush(stdout);
  }
  std::printf("\nshape check (paper): reuse wins by 13x-47x; the factor grows "
              "with per-iteration inspector cost and shrinks with P.\n");
  bench::print_footer(tally);

  // CHAOS-style software caching on the no-reuse column — NOT a paper row:
  // the translation cache absorbs the warm locate rounds each re-inspection
  // would pay, so these modeled times are (correctly) lower than the paper
  // configuration above. Kept in a separate table so the paper-comparison
  // rows stay untouched.
  std::printf("\nno-reuse + translation cache (not a paper configuration)\n");
  std::printf("%-12s %5s | %12s | %14s | %s\n", "workload", "procs",
              "no reuse", "+tcache", "saved");
  for (const auto& c : configs) {
    if (c.w != &mesh53k) continue;  // the large workload tells the story
    bench::PipelineConfig cfg;
    cfg.partitioner = "RCB";
    cfg.iterations = 100;
    cfg.schedule_reuse = false;
    const auto plain = bench::run_hand_pipeline(c.procs, *c.w, cfg);
    cfg.translation_cache = true;
    const auto cached = bench::run_hand_pipeline(c.procs, *c.w, cfg);
    std::printf("%-12s %5d | %12.1f | %14.1f | %5.1f%%\n", c.w->name.c_str(),
                c.procs, plain.total(), cached.total(),
                100.0 * (plain.total() - cached.total()) / plain.total());
    std::fflush(stdout);
  }
  return 0;
}
