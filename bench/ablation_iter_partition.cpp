// Ablation C: iteration-partitioning rule. Section 4.3 of the paper argues
// that the owner-computes rule forces communication even in loops with no
// loop-carried dependences, and proposes placing each iteration on the
// process owning MOST of its references. This bench measures executor time
// and communication volume of loop L2 under both rules.
#include <cstdio>

#include "bench/common.hpp"

namespace bench = chaos::bench;
namespace core = chaos::core;
using chaos::f64;

int main() {
  std::printf("Ablation C: iteration placement — almost-owner-computes "
              "(majority) vs owner-computes\n");
  std::printf("RCB distribution, 20 executor iterations (modeled seconds)\n\n");

  std::printf("%-12s %5s | %10s %10s %10s | %10s %10s %10s\n", "workload",
              "procs", "maj exec", "maj msgs", "maj words", "own exec",
              "own msgs", "own words");

  const auto mesh = bench::workload_mesh_10k();
  const auto md = bench::workload_md_648();
  for (const auto* w : {&mesh, &md}) {
    for (int procs : {4, 8, 16}) {
      bench::PipelineConfig cfg;
      cfg.partitioner = "RCB";
      cfg.iterations = 20;

      cfg.iter_rule = core::IterRule::MostLocalReferences;
      const auto maj = bench::run_hand_pipeline(procs, *w, cfg);
      cfg.iter_rule = core::IterRule::OwnerComputes;
      const auto own = bench::run_hand_pipeline(procs, *w, cfg);

      std::printf("%-12s %5d | %10.2f %10lld %10lld | %10.2f %10lld %10lld\n",
                  w->name.c_str(), procs, maj.executor,
                  static_cast<long long>(maj.gather_messages),
                  static_cast<long long>(maj.gather_volume), own.executor,
                  static_cast<long long>(own.gather_messages),
                  static_cast<long long>(own.gather_volume));
      std::fflush(stdout);
    }
  }
  std::printf("\nshape check: the majority rule never moves MORE data than "
              "owner-computes; the gap is the off-process references "
              "owner-computes forces through the first-reference owner.\n");
  return 0;
}
