#include "bench/common.hpp"

#include <map>
#include <memory>
#include <mutex>

#include "dist/translation_cache.hpp"

namespace chaos::bench {

namespace {

Workload from_mesh(const wl::Mesh& m, std::string name) {
  Workload w;
  w.name = std::move(name);
  w.nnodes = m.nnodes;
  w.nedges = m.nedges;
  w.e1 = m.edge1;
  w.e2 = m.edge2;
  w.cx = m.x;
  w.cy = m.y;
  w.cz = m.z;
  w.flops_per_edge = 30.0;
  return w;
}

bool needs_geometry(const std::string& partitioner) {
  return partitioner == "RCB" || partitioner == "INERTIAL" ||
         partitioner == "RCB+KL";
}
bool needs_link(const std::string& partitioner) {
  return partitioner == "RSB" || partitioner == "RSB+KL" ||
         partitioner == "RCB+KL";
}

}  // namespace

rt::Machine& pooled_machine(int procs) {
  static std::map<int, std::unique_ptr<rt::Machine>> machines;
  auto& slot = machines[procs];
  if (!slot) slot = std::make_unique<rt::Machine>(procs);
  return *slot;
}

Workload workload_mesh_10k() { return from_mesh(wl::mesh_10k(), "10K mesh"); }
Workload workload_mesh_53k() { return from_mesh(wl::mesh_53k(), "53K mesh"); }
Workload workload_mesh_tiny() { return from_mesh(wl::mesh_tiny(), "tiny mesh"); }

Workload workload_md_648() {
  // Cutoff chosen so the pair density (~90 neighbors/atom) matches the
  // per-iteration loop cost the paper's 648-atom timings imply; the paper
  // does not state the CHARMM cutoff it used.
  const wl::MdSystem s = wl::make_water_box(6, 6.0);
  Workload w;
  w.name = "648 atoms";
  w.nnodes = s.natoms;
  w.nedges = s.npairs;
  w.e1 = s.pair1;
  w.e2 = s.pair2;
  w.cx = s.x;
  w.cy = s.y;
  w.cz = s.z;
  w.flops_per_edge = 40.0;  // electrostatic kernel is a bit heavier
  return w;
}

PhaseResult run_hand_pipeline(int procs, const Workload& w,
                              const PipelineConfig& cfg) {
  PhaseResult result;
  const auto wall_start = std::chrono::steady_clock::now();

  // The whole pipeline is one supervised phase: each attempt rebuilds every
  // phase product from the workload inputs, so a retried transient replays
  // cleanly and the successful attempt's modeled clocks match a clean run.
  // The default policy (max_attempts = 1) makes this exactly machine.run.
  rt::Machine& machine = pooled_machine(procs);
  core::Supervisor supervisor(machine, cfg.retry);
  supervisor.run_phase("hand_pipeline", [&](rt::Process& p) {
    f64 t_graph = 0, t_part = 0, t_insp = 0, t_remap = 0, t_exec = 0;

    auto reg = dist::Distribution::block(p, w.nnodes);
    auto reg2 = dist::Distribution::block(p, w.nedges);
    dist::DistributedArray<f64> x(p, reg), y(p, reg, 0.0);
    x.fill_by_global([](i64 g) {
      return 1.0 + 1.0 / (1.0 + static_cast<f64>(g));
    });

    std::vector<i64> e1, e2;
    for (i64 l = 0; l < reg2->my_local_size(); ++l) {
      const i64 e = reg2->global_of(p.rank(), l);
      e1.push_back(w.e1[static_cast<std::size_t>(e)]);
      e2.push_back(w.e2[static_cast<std::size_t>(e)]);
    }

    std::shared_ptr<const dist::Distribution> data_dist = reg;
    core::ReuseRegistry registry;

    if (cfg.partitioner != "HPF-BLOCK") {
      // Phase A: GeoCoL construction with exactly the clauses the chosen
      // partitioner consumes.
      {
        rt::ClockSection t(p.clock());
        core::GeoColBuilder builder(p, reg);
        std::vector<f64> xc, yc, zc;
        if (needs_geometry(cfg.partitioner)) {
          for (i64 l = 0; l < reg->my_local_size(); ++l) {
            const i64 g = reg->global_of(p.rank(), l);
            xc.push_back(w.cx[static_cast<std::size_t>(g)]);
            yc.push_back(w.cy[static_cast<std::size_t>(g)]);
            zc.push_back(w.cz[static_cast<std::size_t>(g)]);
          }
          const std::span<const f64> coords[] = {xc, yc, zc};
          builder.geometry(coords);
        }
        if (needs_link(cfg.partitioner)) builder.link(e1, e2);
        auto geocol = builder.build();
        t_graph += t.elapsed_sec();

        // Phase B: partition.
        rt::ClockSection t2(p.clock());
        data_dist = core::set_by_partitioning(p, *geocol, cfg.partitioner,
                                              cfg.ttable_page_size);
        t_part += t2.elapsed_sec();
      }
      // Phase C: remap the data arrays.
      {
        rt::ClockSection t(p.clock());
        core::Redistributor rd(&registry);
        rd.add(x).add(y);
        rd.apply(p, data_dist);
        t_remap += t.elapsed_sec();
      }
    }

    // Phases B(iteration)/D inspector, re-run per sweep when reuse is off.
    // The optional translation cache outlives the plan's workspace that
    // probes it; it binds to data_dist's DAD on the first localize and stays
    // warm across the no-reuse rebuilds — exactly the CHAOS software-caching
    // configuration the flag exists to quantify.
    core::PlanOptions opts = cfg.effective_plan();
    std::unique_ptr<dist::TranslationCache> tcache;
    if (opts.translation_cache == nullptr && cfg.translation_cache) {
      tcache = std::make_unique<dist::TranslationCache>(1 << 18);
      opts.translation_cache = tcache.get();
    }
    core::EdgeLoopPlan plan;
    plan.iws.configure(opts);
    auto build_plan = [&] {
      plan.build.begin_build();
      {
        rt::ClockSection t(p.clock());
        const std::span<const i64> batches[] = {e1, e2};
        plan.iters = core::partition_iterations(
            p, *reg2, *data_dist, batches, cfg.iter_rule,
            cfg.ttable_page_size);
        plan.end1 = dist::apply_remap<i64>(p, plan.iters.remap, e1);
        plan.end2 = dist::apply_remap<i64>(p, plan.iters.remap, e2);
        t_remap += t.elapsed_sec();
      }
      {
        rt::ClockSection t(p.clock());
        const std::span<const i64> remapped[] = {plan.end1, plan.end2};
        // Workspace overload: when reuse is off and the plan is rebuilt
        // every iteration, the re-localize runs through warm buffers.
        core::localize_many(p, *data_dist, remapped, plan.iws, plan.loc);
        t_insp += t.elapsed_sec();
      }
      plan.build.mark_built();
    };

    const f64 half_flops = w.flops_per_edge / 2.0;
    for (int it = 0; it < cfg.iterations; ++it) {
      if (it == 0 || !cfg.schedule_reuse) build_plan();
      rt::ClockSection t(p.clock());
      core::EdgeReductionLoop::execute(
          p, plan, x, y,
          [half_flops](f64 a, f64 b) { return (a - b) * (a + b) * half_flops; },
          [half_flops](f64 a, f64 b) { return (b - a) * (a + b) * half_flops; },
          w.flops_per_edge);
      t_exec += t.elapsed_sec();
    }

    // Reduce to machine-level numbers.
    const f64 mg = rt::allreduce_max(p, t_graph);
    const f64 mp = rt::allreduce_max(p, t_part);
    const f64 mi = rt::allreduce_max(p, t_insp);
    const f64 mr = rt::allreduce_max(p, t_remap);
    const f64 me = rt::allreduce_max(p, t_exec);
    const i64 msgs =
        rt::allreduce_sum(p, plan.loc.schedule.messages(p.rank()));
    const i64 vol =
        rt::allreduce_sum(p, plan.loc.schedule.send_volume(p.rank()));
    if (p.is_root()) {
      result.graph_gen = mg;
      result.partitioner = mp;
      result.inspector = mi;
      result.remap = mr;
      result.executor = me;
      result.gather_messages = msgs;
      result.gather_volume = vol;
    }
  });
  const rt::MessageStats totals = machine.total_stats();
  result.alltoallv_calls = totals.alltoallv_calls;
  result.alltoallv_bytes = totals.alltoallv_bytes;
  result.faults_injected = totals.faults_injected;
  result.timeouts = totals.timeouts;
  result.poisoned_waits = totals.poisoned_waits;
  result.retries = supervisor.stats().retries;
  result.recoveries = supervisor.stats().recoveries;
  result.backoff_wall_ms = supervisor.stats().backoff_wall_ms;
  result.checkpoint_captures = totals.checkpoint_captures;
  result.checkpoint_bytes = totals.checkpoint_bytes;
  result.restored_segments = totals.restored_segments;
  result.restored_bytes = totals.restored_bytes;
  result.shrinks = machine.shrink_count();
  result.schedule_repairs = totals.schedule_repairs;
  result.repair_fallbacks = totals.repair_fallbacks;
  // A clean run must leave every mailbox shard empty: a nonzero per-shard
  // breakdown here means a phase leaked messages it claims it consumed (the
  // recover() footgun, DESIGN.md §12). recover_report() on a clean machine
  // is a cheap no-op probe.
  if (supervisor.stats().attempts == 1) {
    const rt::RecoverReport post = machine.recover_report();
    CHAOS_CHECK(post.dirty_shards.empty(),
                "clean bench run left messages in mailbox shards");
    // This pipeline never mutates an indirection array after inspection, so
    // the repair path must never fire (DESIGN.md §14).
    CHAOS_CHECK(totals.schedule_repairs == 0 && totals.repair_fallbacks == 0,
                "non-adaptive bench run triggered schedule repair");
  }

  result.wall_seconds =
      std::chrono::duration<f64>(std::chrono::steady_clock::now() - wall_start)
          .count();
  return result;
}

PhaseResult run_compiler_pipeline(int procs, const Workload& w,
                                  const PipelineConfig& cfg) {
  PhaseResult result;
  const auto wall_start = std::chrono::steady_clock::now();

  // Assemble the Figure 4 program for this configuration.
  std::string source;
  source += "      REAL*8 x(nnode), y(nnode)\n";
  source += "      INTEGER end_pt1(nedge), end_pt2(nedge)\n";
  const bool partitioned = cfg.partitioner != "HPF-BLOCK";
  const bool geom = partitioned && needs_geometry(cfg.partitioner);
  if (geom) source += "      REAL*8 xc(nnode), yc(nnode), zc(nnode)\n";
  source += "C$    DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)\n";
  source += "C$    DISTRIBUTE reg(BLOCK), reg2(BLOCK)\n";
  source += geom ? "C$    ALIGN x, y, xc, yc, zc WITH reg\n"
                 : "C$    ALIGN x, y WITH reg\n";
  source += "C$    ALIGN end_pt1, end_pt2 WITH reg2\n";
  if (partitioned) {
    source += "C$    CONSTRUCT G (nnode";
    if (geom) source += ", GEOMETRY(3, xc, yc, zc)";
    if (needs_link(cfg.partitioner)) {
      source += ", LINK(nedge, end_pt1, end_pt2)";
    }
    source += ")\n";
    source += "C$    SET distfmt BY PARTITIONING G USING " + cfg.partitioner +
              "\n";
    source += "C$    REDISTRIBUTE reg(distfmt)\n";
  }
  source += "      DO step = 1, " + std::to_string(cfg.iterations) + "\n";
  source += "      FORALL i = 1, nedge\n";
  const std::string half = std::to_string(w.flops_per_edge / 2.0);
  source += "        REDUCE(ADD, y(end_pt1(i)), (x(end_pt1(i)) - "
            "x(end_pt2(i))) * (x(end_pt1(i)) + x(end_pt2(i))) * " +
            half + ")\n";
  source += "        REDUCE(ADD, y(end_pt2(i)), (x(end_pt2(i)) - "
            "x(end_pt1(i))) * (x(end_pt1(i)) + x(end_pt2(i))) * " +
            half + ")\n";
  source += "      END FORALL\n";
  source += "      END DO\n";

  const auto program = lang::compile(source);
  std::vector<i64> e1 = w.e1, e2 = w.e2;
  for (auto& v : e1) v += 1;
  for (auto& v : e2) v += 1;
  std::vector<f64> x0(static_cast<std::size_t>(w.nnodes));
  for (i64 g = 0; g < w.nnodes; ++g) {
    x0[static_cast<std::size_t>(g)] =
        1.0 + 1.0 / (1.0 + static_cast<f64>(g));
  }

  rt::Machine& machine = pooled_machine(procs);
  core::Supervisor supervisor(machine, cfg.retry);
  supervisor.run_phase("compiler_pipeline", [&](rt::Process& p) {
    lang::Instance inst(program);
    inst.set_param("NNODE", w.nnodes);
    inst.set_param("NEDGE", w.nedges);
    inst.bind_real("X", x0);
    inst.bind_int("END_PT1", e1);
    inst.bind_int("END_PT2", e2);
    if (geom) {
      inst.bind_real("XC", w.cx);
      inst.bind_real("YC", w.cy);
      inst.bind_real("ZC", w.cz);
    }
    inst.set_schedule_reuse(cfg.schedule_reuse);
    inst.set_options(cfg.effective_plan());
    inst.execute(p);

    const auto& ph = inst.phases();
    const f64 mg = rt::allreduce_max(p, ph.graph_gen);
    const f64 mp = rt::allreduce_max(p, ph.partition);
    const f64 mi = rt::allreduce_max(p, ph.inspector);
    const f64 mr = rt::allreduce_max(p, ph.remap);
    const f64 me = rt::allreduce_max(p, ph.executor);
    if (p.is_root()) {
      result.graph_gen = mg;
      result.partitioner = mp;
      result.inspector = mi;
      result.remap = mr;
      result.executor = me;
    }
  });
  const rt::MessageStats totals = machine.total_stats();
  result.alltoallv_calls = totals.alltoallv_calls;
  result.alltoallv_bytes = totals.alltoallv_bytes;
  result.faults_injected = totals.faults_injected;
  result.timeouts = totals.timeouts;
  result.poisoned_waits = totals.poisoned_waits;
  result.retries = supervisor.stats().retries;
  result.recoveries = supervisor.stats().recoveries;
  result.backoff_wall_ms = supervisor.stats().backoff_wall_ms;
  result.checkpoint_captures = totals.checkpoint_captures;
  result.checkpoint_bytes = totals.checkpoint_bytes;
  result.restored_segments = totals.restored_segments;
  result.restored_bytes = totals.restored_bytes;
  result.shrinks = machine.shrink_count();
  result.schedule_repairs = totals.schedule_repairs;
  result.repair_fallbacks = totals.repair_fallbacks;
  // A clean run must leave every mailbox shard empty: a nonzero per-shard
  // breakdown here means a phase leaked messages it claims it consumed (the
  // recover() footgun, DESIGN.md §12). recover_report() on a clean machine
  // is a cheap no-op probe.
  if (supervisor.stats().attempts == 1) {
    const rt::RecoverReport post = machine.recover_report();
    CHAOS_CHECK(post.dirty_shards.empty(),
                "clean bench run left messages in mailbox shards");
    // The Figure 4 program never rewrites end_pt1/end_pt2 mid-run, so the
    // repair path must never fire (DESIGN.md §14).
    CHAOS_CHECK(totals.schedule_repairs == 0 && totals.repair_fallbacks == 0,
                "non-adaptive bench run triggered schedule repair");
  }

  result.wall_seconds =
      std::chrono::duration<f64>(std::chrono::steady_clock::now() - wall_start)
          .count();
  return result;
}

void print_header(const std::string& title,
                  const std::vector<std::string>& columns) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-28s", "");
  for (const auto& c : columns) std::printf(" | %18s", c.c_str());
  std::printf("\n%-28s", "(measured / paper, sec)");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    std::printf(" | %8s  %8s", "measured", "paper");
  }
  std::printf("\n");
  for (int i = 0; i < 28 + static_cast<int>(columns.size()) * 21; ++i) {
    std::printf("-");
  }
  std::printf("\n");
}

void print_row(const std::string& label, const std::vector<f64>& measured,
               const std::vector<f64>& paper) {
  std::printf("%-28s", label.c_str());
  for (std::size_t i = 0; i < measured.size(); ++i) {
    if (i < paper.size() && paper[i] >= 0.0) {
      std::printf(" | %8.2f  %8.2f", measured[i], paper[i]);
    } else {
      std::printf(" | %8.2f  %8s", measured[i], "-");
    }
  }
  std::printf("\n");
}

void print_footer(const RobustnessTally& tally) {
  std::printf(
      "note: measured = modeled virtual seconds on the simulated iPSC/860 "
      "(max over processes).\n");
  if (tally.schedule_repairs > 0 || tally.repair_fallbacks > 0) {
    std::printf("repairs: %lld schedules repaired in place, %lld fallbacks "
                "to full re-inspection (DESIGN.md §14).\n",
                static_cast<long long>(tally.schedule_repairs),
                static_cast<long long>(tally.repair_fallbacks));
  }
  if (tally.clean()) {
    std::printf("robustness: clean run (0 faults injected, 0 timeouts, "
                "0 poisoned waits, 0 retries).\n");
    return;
  }
  if (tally.checkpoint_captures > 0 || tally.restored_segments > 0 ||
      tally.shrinks > 0) {
    std::printf("degradation: %lld checkpoint captures, %lld segments "
                "restored, %lld machine shrink%s survived.\n",
                static_cast<long long>(tally.checkpoint_captures),
                static_cast<long long>(tally.restored_segments),
                static_cast<long long>(tally.shrinks),
                tally.shrinks == 1 ? "" : "s");
  }
  if (tally.faults_injected == 0 && tally.timeouts == 0 &&
      tally.poisoned_waits == 0 && tally.retries == 0 &&
      tally.recoveries == 0) {
    // Only the degradation counters were nonzero: the machine itself never
    // misbehaved (e.g. a bench that checkpoints proactively).
    std::printf("robustness: clean machine (0 faults injected, 0 timeouts, "
                "0 poisoned waits, 0 retries).\n");
  } else if (tally.retries > 0 && tally.faults_injected == 0 &&
             tally.timeouts == 0 && tally.poisoned_waits == 0) {
    // Final attempts were clean: the numbers above are healthy-machine
    // measurements, they just cost extra wall-clock to obtain.
    std::printf("robustness: recovered — %lld retries (%lld runs recovered, "
                "%.1f ms backoff wall-clock); final attempts were clean.\n",
                static_cast<long long>(tally.retries),
                static_cast<long long>(tally.recoveries),
                tally.backoff_wall_ms);
  } else {
    std::printf("robustness: %lld faults injected, %lld timeouts, %lld "
                "poisoned waits, %lld retries (%lld recoveries, %.1f ms "
                "backoff) — results above are NOT a healthy-machine "
                "measurement.\n",
                static_cast<long long>(tally.faults_injected),
                static_cast<long long>(tally.timeouts),
                static_cast<long long>(tally.poisoned_waits),
                static_cast<long long>(tally.retries),
                static_cast<long long>(tally.recoveries),
                tally.backoff_wall_ms);
  }
}

}  // namespace chaos::bench
