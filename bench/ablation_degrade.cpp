// Ablation D: graceful degradation under PERMANENT rank failure
// (DESIGN.md §13).
//
// The degradation PR's contract, measured end to end: a chunked, partner-
// checkpointed edge-reduction pipeline hit by a seeded Permanent fault —
// which fires on EVERY visit once triggered, so retry can never outrun it —
// must
//   1. escalate through core::Supervisor to chaos::PermanentFault naming the
//      seeded rank, shrink the machine around it, restore the survivors'
//      state from the partner checkpoints (or restart from scratch when the
//      failure precedes the first commit), and COMPLETE on P-1 ranks — at
//      every injection site, for every victim rank;
//   2. reproduce the clean 8-rank run bit for bit: the data is integer-
//      valued, so every f64 sum is exact and the final array is independent
//      of machine width and summation order;
//   3. survive a second failure (8 -> 7 -> 6) by re-establishing partner
//      redundancy at the new width immediately after each restore, and
//      survive the 2 -> 1 collapse onto a lone survivor;
//   4. keep the degraded machine as cheap as the healthy one: warm executor
//      sweeps after the shrink perform 0 heap allocations (global
//      operator-new counting hook, as in ablation_recovery);
//   5. pay honest modeled charges: checkpoint captures and shrink-restores
//      are tallied in MessageStats, never free.
// Results go to BENCH_degrade.json; all gates are enforced in-binary.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/degrade.hpp"
#include "rt/checkpoint.hpp"
#include "rt/fault.hpp"

// --- global allocation counter ----------------------------------------------

namespace {
std::atomic<long long> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace bench = chaos::bench;
namespace core = chaos::core;
namespace dist = chaos::dist;
namespace rt = chaos::rt;
using chaos::f64;
using chaos::i64;
using chaos::u64;

namespace {

constexpr int kProcs = 8;
constexpr int kChunks = 4;       // checkpoint cadence: commit after each
constexpr int kChunkSweeps = 2;  // sweeps per chunk
constexpr i64 kPageSize = 1024;

u64 splitmix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Integer-valued kernel: x holds small integers, each edge contributes
// 2*x(other) - x(self) to each endpoint. Every partial sum is an exactly
// representable f64, so the accumulated y is bit-identical at any machine
// width and any summation order — which is what makes "restored run ==
// clean run" a bitwise gate rather than a tolerance check.
f64 edge_f(f64 a, f64 b) { return 2.0 * b - a; }
f64 edge_g(f64 a, f64 b) { return 2.0 * a - b; }

/// Per-rank state, indexed by the CURRENT logical rank; rebuilt from scratch
/// or from the checkpoint whenever the machine changes width.
struct RankState {
  std::shared_ptr<const dist::Distribution> edges;
  std::shared_ptr<const dist::Distribution> data;
  std::optional<dist::DistributedArray<f64>> x, y;
  /// Working copy for the in-flight chunk: promoted into y only by the
  /// checkpoint phase, so a retried (or abandoned) chunk attempt never
  /// half-applies its sweeps.
  std::optional<dist::DistributedArray<f64>> y_work;
  std::vector<i64> e1, e2;
  std::vector<i64> globals;  // data->my_globals(), cached for capture
  std::shared_ptr<core::EdgeLoopPlan> plan;
};

struct RunOutcome {
  bool ok = false;
  bool completed = false;
  int final_width = 0;
  int restores = 0;   // shrink + restore-from-checkpoint recoveries
  int restarts = 0;   // shrink + restart-from-scratch recoveries
  std::vector<int> dead;  // culprit ranks in kill order (era-local numbering)
  std::vector<f64> y;     // final global array (root)
  long long warm_allocs = -1;
  rt::MessageStats charges;   // accumulated over every successful run
  core::SupervisorStats sup;
  std::string error;
};

/// One full degradation-supervised pipeline on @p machine, seeded with
/// @p faults (installed one at a time; the next arms only after the current
/// one's victim has been shrunk around). With no faults this is the clean
/// baseline.
RunOutcome run_app(rt::Machine& machine, const bench::Workload& w,
                   const std::vector<rt::FaultPlan*>& faults) {
  machine.restore_full_width();
  const int start_width = machine.active_nprocs();
  rt::CheckpointStore store(start_width);
  const rt::RetryPolicy policy{.max_attempts = 2,
                               .base_backoff_ms = 0.1,
                               .multiplier = 2.0,
                               .max_backoff_ms = 0.5};
  core::Supervisor sup(machine, policy);

  RunOutcome out;
  int width = start_width;
  std::vector<RankState> st(static_cast<std::size_t>(width));
  int done = 0;          // committed chunks
  bool fresh = true;     // next iteration must set up from scratch
  u64 capture_epoch = 0;
  long long warm_start = 0, warm_end = 0;  // written by rank 0 only

  std::size_t next_fault = 0;
  auto arm = [&] {
    machine.install_fault_plan(next_fault < faults.size()
                                   ? faults[next_fault]
                                   : nullptr);
  };
  arm();

  auto build_plan = [&](rt::Process& p, RankState& s) {
    s.e1.clear();
    s.e2.clear();
    for (i64 l = 0; l < s.edges->my_local_size(); ++l) {
      const i64 e = s.edges->global_of(p.rank(), l);
      s.e1.push_back(w.e1[static_cast<std::size_t>(e)]);
      s.e2.push_back(w.e2[static_cast<std::size_t>(e)]);
    }
    s.plan = core::EdgeReductionLoop::inspect(p, *s.edges, s.e1, s.e2,
                                              *s.data);
    s.globals = s.data->my_globals();
  };

  auto setup_body = [&](rt::Process& p) {
    RankState& s = st[static_cast<std::size_t>(p.rank())];
    s.data = dist::Distribution::block(p, w.nnodes);
    s.edges = dist::Distribution::block(p, w.nedges);
    s.x.emplace(p, s.data);
    s.y.emplace(p, s.data, 0.0);
    s.x->fill_by_global(
        [](i64 g) { return static_cast<f64>(g % 97 + 1); });
    s.y_work.reset();
    build_plan(p, s);
  };

  auto sweep_body = [&](rt::Process& p) {
    RankState& s = st[static_cast<std::size_t>(p.rank())];
    s.y_work = *s.y;  // fresh copy per attempt: idempotent accumulation
    const int P = p.nprocs();
    for (int k = 0; k < kChunkSweeps; ++k) {
      core::EdgeReductionLoop::execute(p, *s.plan, *s.x, *s.y_work, edge_f,
                                       edge_g, 8.0);
      // Ring heartbeat: gives the mailbox injection sites real visits.
      p.send_value<i64>((p.rank() + 1) % P, 3, static_cast<i64>(k));
      (void)p.recv_value<i64>((p.rank() + P - 1) % P, 3);
    }
  };

  auto checkpoint_body = [&](rt::Process& p) {
    RankState& s = st[static_cast<std::size_t>(p.rank())];
    if (s.y_work) {  // idempotent promotion (a retried capture skips it)
      *s.y = std::move(*s.y_work);
      s.y_work.reset();
    }
    const std::vector<rt::SegmentView> views = {
        core::make_segment_view<f64>(0, *s.x, s.globals, 0),
        core::make_segment_view<f64>(1, *s.y, s.globals, 0),
    };
    store.capture(p, capture_epoch, views);
  };

  auto warm_body = [&](rt::Process& p) {
    RankState& s = st[static_cast<std::size_t>(p.rank())];
    if (!s.y_work) s.y_work.emplace(*s.y);  // scratch target, pre-window
    for (int it = 0; it < 3; ++it) {
      if (it == 1) {  // window opens after the sizing sweep
        rt::barrier(p);
        if (p.rank() == 0) {
          warm_start = g_heap_allocs.load(std::memory_order_relaxed);
        }
      }
      core::EdgeReductionLoop::execute(p, *s.plan, *s.x, *s.y_work, edge_f,
                                       edge_g, 8.0);
    }
    rt::barrier(p);
    if (p.rank() == 0) {
      warm_end = g_heap_allocs.load(std::memory_order_relaxed);
    }
  };

  // run_phase plus charge accounting (run() resets machine stats, so the
  // totals are folded in after every successful phase).
  auto phase = [&](const char* name,
                   const std::function<void(rt::Process&)>& body) {
    sup.run_phase(name, body);
    out.charges += machine.total_stats();
  };

  while (true) {
    try {
      if (fresh) {
        phase("setup", setup_body);
        fresh = false;
      }
      while (done < kChunks) {
        phase("sweep", sweep_body);
        capture_epoch = static_cast<u64>(done + 1);
        phase("checkpoint", checkpoint_body);
        store.commit();
        ++done;
      }
      phase("gather", [&](rt::Process& p) {
        RankState& s = st[static_cast<std::size_t>(p.rank())];
        auto g = s.y->to_global(p);
        if (p.rank() == 0) out.y = std::move(g);
      });
      phase("warm", warm_body);
      out.completed = true;
      break;
    } catch (const chaos::PermanentFault& pf) {
      if (width <= 1 || pf.rank < 0 || pf.rank >= width) {
        out.error = std::string("unrecoverable escalation: ") + pf.what();
        break;
      }
      out.dead.push_back(pf.rank);
      machine.install_fault_plan(nullptr);
      ++next_fault;  // this fault's victim is about to leave the machine
      machine.shrink_to(width - 1);
      const core::ShrinkMap map{.old_nprocs = width, .dead_rank = pf.rank};
      width -= 1;
      std::vector<RankState> nst(static_cast<std::size_t>(width));
      if (store.has_committed()) {
        // Shrink-remap restore, then immediately re-establish partner
        // redundancy at the new width (the restored state exists on exactly
        // one rank per element until the next capture commits).
        machine.run([&](rt::Process& p) {
          RankState& s = nst[static_cast<std::size_t>(p.rank())];
          const auto segs = core::restore_shrunk(p, store, map, kPageSize);
          s.data = segs[0].dist;
          s.x = core::restored_array<f64>(p, segs[0]);
          s.y = core::restored_array<f64>(p, segs[1]);
          s.edges = dist::Distribution::block(p, w.nedges);
          s.y_work.reset();
          build_plan(p, s);
        });
        out.charges += machine.total_stats();
        st = std::move(nst);
        done = static_cast<int>(store.epoch());
        capture_epoch = static_cast<u64>(done);
        machine.run(checkpoint_body);
        out.charges += machine.total_stats();
        store.commit();
        ++out.restores;
      } else {
        // Death before the first commit: nothing to restore, restart the
        // whole computation on the survivors.
        st = std::move(nst);
        done = 0;
        fresh = true;
        ++out.restarts;
      }
      arm();
    } catch (const std::exception& e) {
      out.error = e.what();
      break;
    }
  }

  out.final_width = machine.active_nprocs();
  out.warm_allocs = warm_end - warm_start;
  out.sup = sup.stats();
  out.ok = out.completed && out.error.empty();
  return out;
}

bool same_y(const RunOutcome& a, const RunOutcome& b) {
  return a.y.size() == b.y.size() &&
         std::memcmp(a.y.data(), b.y.data(), a.y.size() * sizeof(f64)) == 0;
}

}  // namespace

int main() {
  std::printf("Ablation D: graceful degradation — partner checkpoints + "
              "shrink-remap recovery\n\n");

  const auto w = bench::workload_mesh_tiny();
  rt::Machine machine(kProcs);

  // --- clean baseline --------------------------------------------------------
  const RunOutcome clean = run_app(machine, w, {});
  if (!clean.ok || clean.final_width != kProcs) {
    std::fprintf(stderr, "FAIL: clean run failed: %s\n", clean.error.c_str());
    return 1;
  }
  std::printf("clean: %d ranks, %d chunks, warm-sweep allocs %lld, "
              "%lld checkpoint captures (%lld bytes)\n\n",
              kProcs, kChunks, clean.warm_allocs,
              static_cast<long long>(clean.charges.checkpoint_captures),
              static_cast<long long>(clean.charges.checkpoint_bytes));

  int rc = 0;
  bench::RobustnessTally tally;

  // --- single-kill sweep: every site x every victim rank ---------------------
  // A Permanent fault armed at each of the six sites in turn, on every rank.
  // Visit ranges are sized per site so most seeds land inside a real visit
  // sequence; a seed whose visit is never reached runs clean at full width
  // (and still must be bit-identical).
  static constexpr u64 kNthRange[rt::kFaultSiteCount] = {
      40,  // BarrierArrive
      12,  // BlackboardPublish
      4,   // MailboxPut: one heartbeat per rank per sweep
      4,   // MailboxRecv
      10,  // Alltoall
      8,   // AlltoallvFlat
  };
  i64 fired_scenarios = 0, restores = 0, restarts = 0, failures = 0;
  i64 sweep_retries = 0;
  i64 fired_by_site[rt::kFaultSiteCount] = {};
  i64 checkpoint_captures = 0, restored_segments = 0, shrinks = 0;
  i64 checkpoint_bytes = 0, restored_bytes = 0;
  const int scenarios = rt::kFaultSiteCount * kProcs;

  for (int site_i = 0; site_i < rt::kFaultSiteCount; ++site_i) {
    for (int rank = 0; rank < kProcs; ++rank) {
      u64 z = 0xDE6EADEull + static_cast<u64>(site_i * kProcs + rank);
      z = splitmix64(z);
      // Force one early detonation per site: rank 0 gets nth_visit = 1, so
      // at least one seed per site dies before the first commit and takes
      // the restart-from-scratch path.
      const u64 nth = rank == 0 ? 1 : 1 + z % kNthRange[site_i];
      rt::FaultPlan plan(kProcs, z);
      plan.add({static_cast<rt::FaultSite>(site_i),
                rt::FaultKind::Permanent, rank, nth, 0.0});
      const RunOutcome r = run_app(machine, w, {&plan});

      const bool fired = plan.fired() > 0;
      bool scenario_ok;
      if (fired) {
        scenario_ok = r.ok && r.final_width == kProcs - 1 &&
                      r.dead.size() == 1 && r.dead[0] == rank &&
                      same_y(r, clean) && r.warm_allocs == 0;
      } else {
        scenario_ok = r.ok && r.final_width == kProcs && same_y(r, clean);
      }
      if (!scenario_ok) {
        ++failures;
        std::fprintf(
            stderr,
            "FAIL seed site=%s rank=%d nth=%llu: ok=%d width=%d dead=%d "
            "identical=%d warm_allocs=%lld%s%s\n",
            rt::fault_site_name(static_cast<rt::FaultSite>(site_i)), rank,
            static_cast<unsigned long long>(nth), r.ok ? 1 : 0,
            r.final_width, r.dead.empty() ? -1 : r.dead[0],
            same_y(r, clean) ? 1 : 0, r.warm_allocs,
            r.error.empty() ? "" : " error=",
            r.error.empty() ? "" : r.error.c_str());
      }
      if (fired) {
        ++fired_scenarios;
        ++fired_by_site[site_i];
      }
      restores += r.restores;
      restarts += r.restarts;
      sweep_retries += r.sup.retries;
      checkpoint_captures += r.charges.checkpoint_captures;
      checkpoint_bytes += r.charges.checkpoint_bytes;
      restored_segments += r.charges.restored_segments;
      restored_bytes += r.charges.restored_bytes;
      shrinks += fired ? 1 : 0;
    }
    std::printf("  site %-17s: %lld/%d fired\n",
                rt::fault_site_name(static_cast<rt::FaultSite>(site_i)),
                static_cast<long long>(fired_by_site[site_i]), kProcs);
  }
  std::printf("\nsingle-kill sweep: %lld/%d fired, %lld restores, %lld "
              "restarts, %lld failures\n",
              static_cast<long long>(fired_scenarios), scenarios,
              static_cast<long long>(restores),
              static_cast<long long>(restarts),
              static_cast<long long>(failures));

  // --- double kill: 8 -> 7 -> 6 ----------------------------------------------
  // MailboxPut visits are one per rank per sweep, so nth = 3 lands
  // deterministically in the second chunk of each era: kill 1 after commit
  // 1, restore at width 7, re-checkpoint, then kill 2 after a width-7
  // commit — the second restore must come from the width-7 checkpoint.
  rt::FaultPlan kill1(kProcs);
  kill1.add({rt::FaultSite::MailboxPut, rt::FaultKind::Permanent, 5, 3, 0.0});
  rt::FaultPlan kill2(kProcs);
  kill2.add({rt::FaultSite::MailboxPut, rt::FaultKind::Permanent, 2, 3, 0.0});
  const RunOutcome dbl = run_app(machine, w, {&kill1, &kill2});
  const bool dbl_ok = dbl.ok && dbl.final_width == kProcs - 2 &&
                      dbl.restores == 2 && dbl.dead.size() == 2 &&
                      dbl.dead[0] == 5 && dbl.dead[1] == 2 &&
                      same_y(dbl, clean) && dbl.warm_allocs == 0;
  if (!dbl_ok) {
    std::fprintf(stderr,
                 "FAIL double kill: ok=%d width=%d restores=%d identical=%d "
                 "warm_allocs=%lld %s\n",
                 dbl.ok ? 1 : 0, dbl.final_width, dbl.restores,
                 same_y(dbl, clean) ? 1 : 0, dbl.warm_allocs,
                 dbl.error.c_str());
    rc = 1;
  }
  std::printf("double kill: 8 -> 7 -> 6, dead ranks {%d, %d}, identical=%d\n",
              dbl.dead.size() > 0 ? dbl.dead[0] : -1,
              dbl.dead.size() > 1 ? dbl.dead[1] : -1,
              same_y(dbl, clean) ? 1 : 0);

  // --- 2 -> 1 collapse -------------------------------------------------------
  rt::Machine duo(2);
  const RunOutcome duo_clean = run_app(duo, w, {});
  rt::FaultPlan killc(2);
  killc.add({rt::FaultSite::MailboxPut, rt::FaultKind::Permanent, 0, 3, 0.0});
  const RunOutcome solo = run_app(duo, w, {&killc});
  const bool collapse_ok = duo_clean.ok && same_y(duo_clean, clean) &&
                           solo.ok && solo.final_width == 1 &&
                           solo.restores == 1 && same_y(solo, clean) &&
                           solo.warm_allocs == 0;
  if (!collapse_ok) {
    std::fprintf(stderr,
                 "FAIL collapse: clean2_ok=%d solo_ok=%d width=%d "
                 "identical=%d warm_allocs=%lld %s\n",
                 duo_clean.ok ? 1 : 0, solo.ok ? 1 : 0, solo.final_width,
                 same_y(solo, clean) ? 1 : 0, solo.warm_allocs,
                 solo.error.c_str());
    rc = 1;
  }
  std::printf("collapse: 2 -> 1 on the lone survivor, identical=%d\n\n",
              same_y(solo, clean) ? 1 : 0);

  // --- robustness footer (satellite: degradation counters) -------------------
  tally.retries = sweep_retries + dbl.sup.retries + solo.sup.retries;
  tally.recoveries = 0;  // permanent faults never recover in place
  tally.checkpoint_captures = checkpoint_captures +
                              dbl.charges.checkpoint_captures +
                              solo.charges.checkpoint_captures;
  tally.restored_segments = restored_segments +
                            dbl.charges.restored_segments +
                            solo.charges.restored_segments;
  tally.shrinks = shrinks + 2 + 1;
  bench::print_footer(tally);

  // --- JSON ------------------------------------------------------------------
  if (std::FILE* f = std::fopen("BENCH_degrade.json", "w")) {
    std::fprintf(f, "{\n  \"bench\": \"degrade\",\n");
    std::fprintf(f,
                 "  \"procs\": %d,\n  \"chunks\": %d,\n  \"chunk_sweeps\": "
                 "%d,\n  \"scenarios\": %d,\n",
                 kProcs, kChunks, kChunkSweeps, scenarios);
    std::fprintf(f,
                 "  \"clean\": {\"warm_sweep_allocs\": %lld, "
                 "\"checkpoint_captures\": %lld, \"checkpoint_bytes\": "
                 "%lld},\n",
                 clean.warm_allocs,
                 static_cast<long long>(clean.charges.checkpoint_captures),
                 static_cast<long long>(clean.charges.checkpoint_bytes));
    std::fprintf(f,
                 "  \"single_kill\": {\"fired\": %lld, \"restores\": %lld, "
                 "\"restarts\": %lld, \"failures\": %lld,\n",
                 static_cast<long long>(fired_scenarios),
                 static_cast<long long>(restores),
                 static_cast<long long>(restarts),
                 static_cast<long long>(failures));
    std::fprintf(f, "    \"fired_by_site\": {");
    for (int i = 0; i < rt::kFaultSiteCount; ++i) {
      std::fprintf(f, "\"%s\": %lld%s",
                   rt::fault_site_name(static_cast<rt::FaultSite>(i)),
                   static_cast<long long>(fired_by_site[i]),
                   i + 1 < rt::kFaultSiteCount ? ", " : "");
    }
    std::fprintf(f, "},\n");
    std::fprintf(f,
                 "    \"checkpoint_captures\": %lld, \"checkpoint_bytes\": "
                 "%lld, \"restored_segments\": %lld, \"restored_bytes\": "
                 "%lld},\n",
                 static_cast<long long>(checkpoint_captures),
                 static_cast<long long>(checkpoint_bytes),
                 static_cast<long long>(restored_segments),
                 static_cast<long long>(restored_bytes));
    std::fprintf(f,
                 "  \"double_kill\": {\"ok\": %s, \"final_width\": %d, "
                 "\"warm_sweep_allocs\": %lld},\n",
                 dbl_ok ? "true" : "false", dbl.final_width,
                 dbl.warm_allocs);
    std::fprintf(f,
                 "  \"collapse\": {\"ok\": %s, \"final_width\": %d},\n",
                 collapse_ok ? "true" : "false", solo.final_width);
    std::fprintf(f, "  \"failures\": %lld\n}\n",
                 static_cast<long long>(failures));
    std::fclose(f);
    std::printf("wrote BENCH_degrade.json\n");
  }

  // --- hard gates ------------------------------------------------------------
  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %lld/%d single-kill scenarios violated a "
                 "gate\n",
                 static_cast<long long>(failures), scenarios);
    rc = 1;
  }
  for (int i = 0; i < rt::kFaultSiteCount; ++i) {
    if (fired_by_site[i] == 0) {
      std::fprintf(stderr, "FAIL: no scenario fired at site %s — the sweep "
                   "is vacuous there\n",
                   rt::fault_site_name(static_cast<rt::FaultSite>(i)));
      rc = 1;
    }
  }
  if (restores == 0 || restarts == 0) {
    std::fprintf(stderr, "FAIL: sweep exercised restores=%lld restarts=%lld "
                 "— both recovery paths must run\n",
                 static_cast<long long>(restores),
                 static_cast<long long>(restarts));
    rc = 1;
  }
  if (checkpoint_captures <= 0 || checkpoint_bytes <= 0 ||
      restored_segments <= 0 || restored_bytes <= 0) {
    std::fprintf(stderr, "FAIL: checkpoint/restore ran without modeled "
                 "charges (captures=%lld bytes=%lld restored=%lld/%lld)\n",
                 static_cast<long long>(checkpoint_captures),
                 static_cast<long long>(checkpoint_bytes),
                 static_cast<long long>(restored_segments),
                 static_cast<long long>(restored_bytes));
    rc = 1;
  }
  if (clean.warm_allocs != 0) {
    std::fprintf(stderr, "FAIL: clean warm sweeps performed %lld heap "
                 "allocations (want 0)\n",
                 clean.warm_allocs);
    rc = 1;
  }
  if (rc == 0) {
    std::printf("\nPASS: every permanent fault shrank to P-1 and completed "
                "bit-identically; 8->7->6 and 2->1 survived; degraded warm "
                "sweeps allocation-free\n");
  }
  return rc;
}
