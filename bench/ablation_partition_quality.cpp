// Ablation D: partitioner quality sweep — edge cut, imbalance, boundary size
// and modeled partitioning cost for every partitioner in the library, on
// both evaluation meshes. Quantifies the Table 2 trade-off (RSB: best cut,
// by far the highest cost; RCB: nearly as good for ~1% of the price; naive
// layouts: cheap and terrible).
#include <cstdio>

#include "bench/common.hpp"
#include "core/geocol.hpp"
#include "partition/metrics.hpp"
#include "partition/partitioner.hpp"

namespace bench = chaos::bench;
namespace core = chaos::core;
namespace dist = chaos::dist;
namespace part = chaos::part;
namespace rt = chaos::rt;
using chaos::f64;
using chaos::i64;

int main() {
  std::printf("Ablation D: partitioner quality sweep\n\n");

  for (const auto& w : {bench::workload_mesh_10k(), bench::workload_mesh_53k()}) {
    for (int procs : {8, 32}) {
      std::printf("%s, %d parts:\n", w.name.c_str(), procs);
      std::printf("  %-10s %10s %10s %10s %10s %12s\n", "name", "edge cut",
                  "cut %", "imbalance", "boundary", "cost (s)");
      for (const char* name : {"BLOCK", "CYCLIC", "RANDOM", "RCB", "INERTIAL",
                               "GREEDY", "RSB", "RCB+KL"}) {
        part::PartitionQuality quality;
        f64 cost = 0.0;
        rt::Machine machine(procs);
        machine.run([&](rt::Process& p) {
          auto vdist = dist::Distribution::block(p, w.nnodes);
          auto edist = dist::Distribution::block(p, w.nedges);
          std::vector<f64> xc, yc, zc;
          for (i64 l = 0; l < vdist->my_local_size(); ++l) {
            const i64 g = vdist->global_of(p.rank(), l);
            xc.push_back(w.cx[static_cast<std::size_t>(g)]);
            yc.push_back(w.cy[static_cast<std::size_t>(g)]);
            zc.push_back(w.cz[static_cast<std::size_t>(g)]);
          }
          std::vector<i64> e1, e2;
          for (i64 l = 0; l < edist->my_local_size(); ++l) {
            const i64 e = edist->global_of(p.rank(), l);
            e1.push_back(w.e1[static_cast<std::size_t>(e)]);
            e2.push_back(w.e2[static_cast<std::size_t>(e)]);
          }
          core::GeoColBuilder builder(p, vdist);
          const std::span<const f64> coords[] = {xc, yc, zc};
          builder.geometry(coords).link(e1, e2);
          auto geocol = builder.build();
          auto view = geocol->view();

          rt::ClockSection section(p.clock());
          auto parts =
              part::PartitionerRegistry::instance().get(name)(p, view, procs);
          const f64 t = rt::allreduce_max(p, section.elapsed_sec());
          auto q = part::evaluate_partition(p, view, parts, procs);
          if (p.is_root()) {
            quality = q;
            cost = t;
          }
        });
        std::printf("  %-10s %10lld %9.1f%% %10.3f %10lld %12.2f\n", name,
                    static_cast<long long>(quality.edge_cut),
                    100.0 * quality.cut_fraction(), quality.imbalance,
                    static_cast<long long>(quality.boundary_vertices), cost);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  std::printf("shape check: cut(RSB) <~ cut(RCB) << cut(BLOCK) ~ "
              "cut(RANDOM); cost(RSB) >> cost(RCB); KL refinement trims the "
              "RCB cut a further few percent.\n");
  return 0;
}
