// Ablation F: fault-injection overhead and detection latency (DESIGN.md §10).
//
// The robustness PR's contract has two measurable halves:
//   1. Zero overhead when dormant — an injection site is one relaxed pointer
//      load, and fault machinery never charges the virtual clock. So the
//      MODELED results of every existing bench must be byte-identical across
//      {no plan installed, armed-but-idle plan, firing delay plan}. Gated
//      bitwise here on a collective loop and on the full tiny-mesh hand
//      pipeline (the same code paths BENCH_inspector/BENCH_executor time).
//   2. Bounded detection — with a deadline armed, a stalled rank is detected
//      and surfaced as MachineTimeout within the deadline plus scheduling
//      slack, for both a barrier stall and a lost-message recv stall.
// Results go to BENCH_faults.json; both gates are enforced in-binary so CI
// fails loudly.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "rt/fault.hpp"

namespace rt = chaos::rt;
namespace bench = chaos::bench;
using chaos::f64;
using chaos::i64;
using chaos::u64;

namespace {

constexpr int kProcs = 8;

// --- half 1: modeled-time identity ------------------------------------------

struct IdentityResult {
  std::string config;       // "no_plan" / "armed_idle" / "delay_firing"
  f64 collective_us = 0.0;  // max virtual time of the collective loop
  f64 pipeline_total = 0.0; // modeled total of the tiny-mesh hand pipeline
  i64 faults_injected = 0;  // pipeline counter (delay config must be > 0)
};

/// The rt-level workload: a loop over every barrier-based primitive the
/// pipelines lean on. Deterministic modeled time; any clock charge sneaking
/// into the fault path shows up as a bitwise mismatch.
f64 collective_loop(rt::Machine& machine) {
  machine.run([](rt::Process& p) {
    const int P = p.nprocs();
    std::vector<i64> counts(static_cast<std::size_t>(P), 2);
    std::vector<i64> peers(static_cast<std::size_t>(P), 0);
    std::vector<i64> off(static_cast<std::size_t>(P) + 1);
    for (std::size_t i = 0; i < off.size(); ++i) {
      off[i] = static_cast<i64>(i) * 3;
    }
    std::vector<f64> payload(static_cast<std::size_t>(P) * 3, 1.0);
    std::vector<f64> ghost(static_cast<std::size_t>(P) * 3, 0.0);
    for (int iter = 0; iter < 50; ++iter) {
      rt::barrier(p);
      (void)rt::allreduce_sum(p, i64{p.rank()});
      rt::alltoall<i64>(p, counts, peers);
      rt::alltoallv_flat<f64>(p, payload, off, ghost, off);
      if (p.rank() == 0) p.send_value<int>(1 % P, 3, iter);
      if (p.rank() == 1 % P) (void)p.recv_value<int>(0, 3);
    }
  });
  return machine.max_virtual_time_us();
}

IdentityResult run_identity(const std::string& config) {
  IdentityResult r;
  r.config = config;
  rt::FaultPlan plan(kProcs);
  if (config == "delay_firing") {
    // Fires for real (wall-clock sleeps on every rank's first barrier and a
    // seeded-duration delay at the alltoall), but never touches the clocks.
    plan.add({rt::FaultSite::BarrierArrive, rt::FaultKind::Delay, /*rank=*/-1,
              /*nth_visit=*/1, /*delay_ms=*/1.0});
    plan.add({rt::FaultSite::Alltoall, rt::FaultKind::Delay, /*rank=*/2,
              /*nth_visit=*/3, /*delay_ms=*/0.0});
  }
  const bool install = config != "no_plan";

  rt::Machine collective_machine(kProcs);
  if (install) collective_machine.install_fault_plan(&plan);
  r.collective_us = collective_loop(collective_machine);

  // The full hand pipeline runs on the pooled machine; arm it the same way
  // (and disarm after — other benches share the pool).
  rt::Machine& pooled = bench::pooled_machine(kProcs);
  plan.reset();
  if (install) pooled.install_fault_plan(&plan);
  const auto w = bench::workload_mesh_tiny();
  bench::PipelineConfig cfg;
  cfg.partitioner = "RCB";
  cfg.iterations = 10;
  const bench::PhaseResult pipe = bench::run_hand_pipeline(kProcs, w, cfg);
  pooled.install_fault_plan(nullptr);
  r.pipeline_total = pipe.total();
  r.faults_injected = pipe.faults_injected;
  return r;
}

// --- half 2: detection latency ----------------------------------------------

struct DetectionResult {
  std::string scenario;  // "barrier_stall" / "recv_stall"
  f64 deadline_sec = 0.0;
  f64 detect_sec = 0.0;  // run start -> MachineTimeout surfaced
  bool typed_timeout = false;
  int missing_rank = -1;
};

DetectionResult run_detection(const std::string& scenario, f64 deadline_sec) {
  DetectionResult r;
  r.scenario = scenario;
  r.deadline_sec = deadline_sec;
  rt::Machine machine(kProcs);
  machine.set_deadline_sec(deadline_sec);
  rt::FaultPlan plan(kProcs);
  const int victim = 3;
  // barrier_stall parks the victim at its first barrier arrival; recv_stall
  // parks it at its send, so the peer waiting in recv holds a dead letter
  // box — the two distinct watchdogs (barrier epoch scan, mailbox deadline).
  plan.add({scenario == "barrier_stall" ? rt::FaultSite::BarrierArrive
                                        : rt::FaultSite::MailboxPut,
            rt::FaultKind::Stall, victim});
  machine.install_fault_plan(&plan);

  const auto t0 = std::chrono::steady_clock::now();
  try {
    machine.run([&](rt::Process& p) {
      if (scenario == "recv_stall") {
        // Only the mailbox watchdog is armed: the victim stalls before its
        // send, rank 0 waits on the dead letter box, everyone else returns
        // (a peer parked in a barrier would race its own watchdog and
        // report missing ranks {0, victim}).
        if (p.rank() == victim) p.send_value<int>(0, 1, 42);
        if (p.rank() == 0) (void)p.recv_value<int>(victim, 1);
      } else {
        rt::barrier(p);
      }
    });
  } catch (const chaos::MachineTimeout& t) {
    r.typed_timeout = true;
    if (!t.missing_ranks.empty()) r.missing_rank = t.missing_ranks.front();
  } catch (...) {
  }
  r.detect_sec =
      std::chrono::duration<f64>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

bool write_json(const std::vector<IdentityResult>& ident,
                const std::vector<DetectionResult>& detect) {
  std::FILE* f = std::fopen("BENCH_faults.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_faults.json for writing\n");
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"fault_injection\",\n");
  std::fprintf(f, "  \"procs\": %d,\n  \"identity\": [\n", kProcs);
  for (std::size_t i = 0; i < ident.size(); ++i) {
    const auto& r = ident[i];
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"collective_virtual_us\": %.17g, "
                 "\"pipeline_modeled_total\": %.17g, "
                 "\"faults_injected\": %lld}%s\n",
                 r.config.c_str(), r.collective_us, r.pipeline_total,
                 static_cast<long long>(r.faults_injected),
                 i + 1 < ident.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"detection\": [\n");
  for (std::size_t i = 0; i < detect.size(); ++i) {
    const auto& r = detect[i];
    std::fprintf(f,
                 "    {\"scenario\": \"%s\", \"deadline_sec\": %.3f, "
                 "\"detect_sec\": %.3f, \"typed_timeout\": %s, "
                 "\"missing_rank\": %d}%s\n",
                 r.scenario.c_str(), r.deadline_sec, r.detect_sec,
                 r.typed_timeout ? "true" : "false", r.missing_rank,
                 i + 1 < detect.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main() {
  std::printf("Ablation F: fault injection — dormant overhead and detection "
              "latency\n\n");

  std::vector<IdentityResult> ident;
  for (const char* config : {"no_plan", "armed_idle", "delay_firing"}) {
    ident.push_back(run_identity(config));
    const auto& r = ident.back();
    std::printf("%-14s collective %.6f us   pipeline %.6f s   "
                "faults_injected %lld\n",
                r.config.c_str(), r.collective_us, r.pipeline_total,
                static_cast<long long>(r.faults_injected));
  }

  constexpr f64 kDeadlineSec = 0.4;
  std::vector<DetectionResult> detect;
  for (const char* scenario : {"barrier_stall", "recv_stall"}) {
    detect.push_back(run_detection(scenario, kDeadlineSec));
    const auto& r = detect.back();
    std::printf("%-14s deadline %.2fs -> detected in %.3fs (typed=%s, "
                "missing rank %d)\n",
                r.scenario.c_str(), r.deadline_sec, r.detect_sec,
                r.typed_timeout ? "yes" : "no", r.missing_rank);
  }

  if (write_json(ident, detect)) {
    std::printf("\nwrote BENCH_faults.json\n");
  }

  // Hard gates (checked here so CI smoke fails loudly).
  int rc = 0;
  // Gate 1: bitwise modeled-time identity across configurations, and the
  // delay config must actually have fired (otherwise the gate is vacuous).
  for (const auto& r : ident) {
    if (r.collective_us != ident[0].collective_us ||
        r.pipeline_total != ident[0].pipeline_total) {
      std::fprintf(stderr,
                   "FAIL: config %s changed modeled results (collective %.17g "
                   "vs %.17g, pipeline %.17g vs %.17g) — fault machinery "
                   "leaked into the virtual clock\n",
                   r.config.c_str(), r.collective_us, ident[0].collective_us,
                   r.pipeline_total, ident[0].pipeline_total);
      rc = 1;
    }
    const bool should_fire = r.config == "delay_firing";
    if (should_fire != (r.faults_injected > 0)) {
      std::fprintf(stderr, "FAIL: config %s injected %lld faults (want %s)\n",
                   r.config.c_str(),
                   static_cast<long long>(r.faults_injected),
                   should_fire ? "> 0" : "0");
      rc = 1;
    }
  }
  // Gate 2: bounded detection — within the deadline plus 1s of host
  // scheduling slack, with the typed error naming the stalled rank.
  for (const auto& r : detect) {
    if (!r.typed_timeout || r.missing_rank != 3 ||
        r.detect_sec > r.deadline_sec + 1.0) {
      std::fprintf(stderr,
                   "FAIL: %s detected in %.3fs (deadline %.2fs, typed=%s, "
                   "missing rank %d; want MachineTimeout naming rank 3 "
                   "within deadline + 1s)\n",
                   r.scenario.c_str(), r.detect_sec, r.deadline_sec,
                   r.typed_timeout ? "yes" : "no", r.missing_rank);
      rc = 1;
    }
  }
  if (rc == 0) {
    std::printf("\nPASS: dormant fault machinery is modeled-time invisible; "
                "stalls detected within the deadline\n");
  }
  return rc;
}
