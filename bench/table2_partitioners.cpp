// Table 2 of the paper: the unstructured-mesh template on the 53K mesh at 32
// processors, comparing
//   - binary coordinate bisection (RCB): compiler-generated code with
//     schedule reuse, compiler-generated code WITHOUT reuse, hand-coded;
//   - naive BLOCK partitioning (hand-coded);
//   - recursive spectral bisection (RSB): hand-coded and compiler-generated.
// Rows: graph generation, partitioner, inspector, remap, executor (100
// iterations), total. The headline claims reproduced here: compiler within
// ~10% of hand-coded; RCB/RSB executor 2-3x faster than BLOCK; RSB pays a
// far larger partitioning cost than RCB for a slightly faster executor.
#include <cstdio>

#include "bench/common.hpp"

namespace bench = chaos::bench;
using chaos::f64;

int main(int argc, char** argv) {
  // Allow a quick mode for smoke testing: bench/table2_partitioners tiny
  const bool tiny = argc > 1 && std::string(argv[1]) == "tiny";
  const auto w = tiny ? bench::workload_mesh_tiny() : bench::workload_mesh_53k();
  const int procs = tiny ? 4 : 32;
  std::printf("Table 2: unstructured mesh template — %s, %d processors\n",
              w.name.c_str(), procs);

  auto cfg = [&](const std::string& part, bool reuse) {
    bench::PipelineConfig c;
    c.partitioner = part;
    c.iterations = 100;
    c.schedule_reuse = reuse;
    return c;
  };

  std::printf("  running RCB compiler (reuse)...\n");
  std::fflush(stdout);
  const auto rcb_comp = bench::run_compiler_pipeline(procs, w, cfg("RCB", true));
  std::printf("  running RCB compiler (no reuse)...\n");
  std::fflush(stdout);
  const auto rcb_comp_nr =
      bench::run_compiler_pipeline(procs, w, cfg("RCB", false));
  std::printf("  running RCB hand-coded...\n");
  std::fflush(stdout);
  const auto rcb_hand = bench::run_hand_pipeline(procs, w, cfg("RCB", true));
  std::printf("  running BLOCK hand-coded...\n");
  std::fflush(stdout);
  const auto block_hand =
      bench::run_hand_pipeline(procs, w, cfg("HPF-BLOCK", true));
  std::printf("  running RSB hand-coded...\n");
  std::fflush(stdout);
  const auto rsb_hand = bench::run_hand_pipeline(procs, w, cfg("RSB", true));
  std::printf("  running RSB compiler (reuse)...\n");
  std::fflush(stdout);
  const auto rsb_comp = bench::run_compiler_pipeline(procs, w, cfg("RSB", true));

  bench::print_header(
      "Table 2 — " + w.name + ", " + std::to_string(procs) + " procs",
      {"RCB comp", "RCB comp-NR", "RCB hand", "BLOCK hand", "RSB hand",
       "RSB comp"});
  const bench::PhaseResult* cols[] = {&rcb_comp,   &rcb_comp_nr, &rcb_hand,
                                      &block_hand, &rsb_hand,    &rsb_comp};
  // Paper values (RCB compiler-NR inspector/remap are folded into the 398s
  // total; the scan is partly illegible — see EXPERIMENTS.md).
  auto row = [&](const char* label, auto measure,
                 std::vector<f64> paper) {
    std::vector<f64> m;
    for (const auto* c : cols) m.push_back(measure(*c));
    bench::print_row(label, m, paper);
  };
  row("Graph generation",
      [](const bench::PhaseResult& r) { return r.graph_gen; },
      {-1, -1, -1, 0.0, 2.2, 2.2});
  row("Partitioner",
      [](const bench::PhaseResult& r) { return r.partitioner; },
      {1.6, 1.6, 1.6, 0.0, 258.0, 258.0});
  row("Inspector",
      [](const bench::PhaseResult& r) { return r.inspector; },
      {1.9, -1, 1.9, 1.9, -1, -1});
  row("Remap", [](const bench::PhaseResult& r) { return r.remap; },
      {4.3, -1, 4.2, 2.8, 4.1, 4.1});
  row("Executor (100x)",
      [](const bench::PhaseResult& r) { return r.executor; },
      {16.4, 17.2, 17.2, 54.7, 13.9, 13.9});
  row("Total", [](const bench::PhaseResult& r) { return r.total(); },
      {22.4, 398.0, 23.0, 59.4, 277.5, 277.9});

  std::printf("\nheadline ratios:\n");
  std::printf("  compiler vs hand (RCB total) : %.2f (paper ~0.97, 'within "
              "10%%')\n",
              rcb_comp.total() / rcb_hand.total());
  std::printf("  compiler vs hand (RSB total) : %.2f (paper ~1.00)\n",
              rsb_comp.total() / rsb_hand.total());
  std::printf("  BLOCK / RCB executor         : %.2f (paper ~3.2)\n",
              block_hand.executor / rcb_hand.executor);
  std::printf("  BLOCK / RSB executor         : %.2f (paper ~3.9)\n",
              block_hand.executor / rsb_hand.executor);
  std::printf("  RSB / RCB partitioner cost   : %.1f (paper ~161)\n",
              (rsb_hand.partitioner + rsb_hand.graph_gen) /
                  std::max(rcb_hand.partitioner + rcb_hand.graph_gen, 1e-9));
  std::printf("  no-reuse / reuse (RCB comp)  : %.1f (paper ~17.8)\n",
              rcb_comp_nr.total() / rcb_comp.total());
  bench::RobustnessTally tally;
  for (const auto* r : {&rcb_comp, &rcb_comp_nr, &rcb_hand, &block_hand,
                        &rsb_hand, &rsb_comp}) {
    tally.add(*r);
  }
  bench::print_footer(tally);
  return 0;
}
