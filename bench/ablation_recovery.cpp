// Ablation R: chaos soak of the recovery stack (DESIGN.md §11).
//
// The recovery PR's contract, measured end to end: a supervised pipeline hit
// by a deterministic transient fault — Throw, Stall, or AllocFail at any of
// the six rt/ injection sites, on any rank, at a seeded visit — must
//   1. recover on EVERY seed within the retry budget (one fault == at most
//      one retry: FaultPlan visit counters are cumulative across attempts,
//      so a spec is single-shot and the retried attempt runs clean);
//   2. reproduce the clean run bit for bit: final y array AND the modeled
//      virtual clock of each phase's successful attempt (backoff burns
//      wall-clock only; recover() leaves no message or epoch residue);
//   3. keep the clean path allocation-free where it was before: the warm
//      executor sweeps perform 0 heap allocations (global operator-new
//      counting hook, as in ablation_ttable).
// The pipeline is the paper's partition -> inspect -> execute sequence over
// the tiny mesh, each phase its own supervised unit with per-rank state
// carried across phases — exactly the shape the Supervisor exists for.
// Results go to BENCH_recovery.json; all gates are enforced in-binary.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "dist/remap.hpp"
#include "dist/translation_cache.hpp"
#include "rt/fault.hpp"

// --- global allocation counter ----------------------------------------------

namespace {
std::atomic<long long> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace bench = chaos::bench;
namespace core = chaos::core;
namespace dist = chaos::dist;
namespace rt = chaos::rt;
using chaos::f64;
using chaos::i64;
using chaos::u64;

namespace {

constexpr int kProcs = 8;
constexpr int kSweeps = 6;
constexpr int kSeeds = 220;
constexpr i64 kPageSize = 4096;
constexpr f64 kStallDeadlineSec = 0.25;

u64 splitmix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Per-rank pipeline state carried ACROSS supervised phases. Each phase
/// body rebuilds its own products from the previous phase's (never from its
/// own partial state), which is what makes a retried attempt idempotent.
struct RankState {
  std::shared_ptr<const dist::Distribution> reg, reg2;
  std::shared_ptr<const dist::Distribution> data_dist;
  std::optional<dist::DistributedArray<f64>> x, y;  // not default-constructible
  std::vector<i64> e1, e2;
  core::EdgeLoopPlan plan;
  std::unique_ptr<dist::TranslationCache> tcache;
};

struct PipelineRun {
  f64 clock_us[3] = {0.0, 0.0, 0.0};  // partition / inspect / execute
  std::vector<f64> y;                 // rank-concatenated final array (root)
  long long warm_allocs = -1;         // heap allocs across warm sweeps
  core::SupervisorStats stats;
  bool ok = false;
  std::string error;
};

/// One full supervised pipeline on @p machine: three run_phase calls over
/// shared per-rank state. The bodies are IDENTICAL for clean and seeded
/// runs — the bitwise gates compare their modeled clocks directly.
PipelineRun run_pipeline(rt::Machine& machine, const bench::Workload& w,
                         const rt::RetryPolicy& policy) {
  PipelineRun out;
  core::Supervisor sup(machine, policy);
  std::vector<RankState> st(kProcs);
  long long warm_start = 0, warm_end = 0;  // written by rank 0 only
  std::vector<f64> y_final;

  auto partition_body = [&](rt::Process& p) {
    RankState& s = st[static_cast<std::size_t>(p.rank())];
    s.reg = dist::Distribution::block(p, w.nnodes);
    s.reg2 = dist::Distribution::block(p, w.nedges);
    s.x.emplace(p, s.reg);
    s.y.emplace(p, s.reg, 0.0);
    s.x->fill_by_global(
        [](i64 g) { return 1.0 + 1.0 / (1.0 + static_cast<f64>(g)); });
    s.e1.clear();
    s.e2.clear();
    for (i64 l = 0; l < s.reg2->my_local_size(); ++l) {
      const i64 e = s.reg2->global_of(p.rank(), l);
      s.e1.push_back(w.e1[static_cast<std::size_t>(e)]);
      s.e2.push_back(w.e2[static_cast<std::size_t>(e)]);
    }
    core::GeoColBuilder builder(p, s.reg);
    std::vector<f64> xc, yc, zc;
    for (i64 l = 0; l < s.reg->my_local_size(); ++l) {
      const i64 g = s.reg->global_of(p.rank(), l);
      xc.push_back(w.cx[static_cast<std::size_t>(g)]);
      yc.push_back(w.cy[static_cast<std::size_t>(g)]);
      zc.push_back(w.cz[static_cast<std::size_t>(g)]);
    }
    const std::span<const f64> coords[] = {xc, yc, zc};
    builder.geometry(coords);
    auto geocol = builder.build();
    s.data_dist = core::set_by_partitioning(p, *geocol, "RCB", kPageSize);
    core::ReuseRegistry registry;
    core::Redistributor rd(&registry);
    rd.add(*s.x).add(*s.y);
    rd.apply(p, s.data_dist);
  };

  auto inspect_body = [&](rt::Process& p) {
    RankState& s = st[static_cast<std::size_t>(p.rank())];
    if (!s.tcache) {
      s.tcache = std::make_unique<dist::TranslationCache>(1 << 16);
      s.plan.iws.attach_cache(s.tcache.get());
    }
    // A retried attempt rebuilds the plan in place through warm workspaces;
    // staged-but-uncommitted cache insertions from the aborted attempt are
    // discarded inside localize, so the retry's miss vote — and its modeled
    // clock — match a clean run.
    s.plan.build.begin_build();
    const std::span<const i64> batches[] = {s.e1, s.e2};
    s.plan.iters =
        core::partition_iterations(p, *s.reg2, *s.data_dist, batches,
                                   core::IterRule::MostLocalReferences,
                                   kPageSize);
    s.plan.end1 = dist::apply_remap<i64>(p, s.plan.iters.remap, s.e1);
    s.plan.end2 = dist::apply_remap<i64>(p, s.plan.iters.remap, s.e2);
    const std::span<const i64> remapped[] = {s.plan.end1, s.plan.end2};
    core::localize_many(p, *s.data_dist, remapped, s.plan.iws, s.plan.loc);
    s.plan.build.mark_built();
  };

  auto execute_body = [&](rt::Process& p) {
    RankState& s = st[static_cast<std::size_t>(p.rank())];
    // Idempotent accumulation: every attempt restarts y from zero.
    std::fill(s.y->local().begin(), s.y->local().end(), 0.0);
    const int P = p.nprocs();
    const f64 half = w.flops_per_edge / 2.0;
    for (int it = 0; it < kSweeps; ++it) {
      if (it == 1) {
        // Warm-sweep allocation window opens after the sizing sweep.
        rt::barrier(p);
        if (p.rank() == 0) {
          warm_start = g_heap_allocs.load(std::memory_order_relaxed);
        }
      }
      core::EdgeReductionLoop::execute(
          p, s.plan, *s.x, *s.y,
          [half](f64 a, f64 b) { return (a - b) * (a + b) * half; },
          [half](f64 a, f64 b) { return (b - a) * (a + b) * half; },
          w.flops_per_edge);
      if (it == 0) {
        // Ring heartbeat on the sizing sweep only: exercises both mailbox
        // injection sites while keeping the warm window p2p-free (send/recv
        // payloads allocate).
        p.send_value<i64>((p.rank() + 1) % P, 7, static_cast<i64>(it));
        (void)p.recv_value<i64>((p.rank() + P - 1) % P, 7);
      }
    }
    rt::barrier(p);
    if (p.rank() == 0) {
      warm_end = g_heap_allocs.load(std::memory_order_relaxed);
    }
    auto full = rt::gatherv<f64>(p, std::span<const f64>(s.y->local()), 0);
    if (p.rank() == 0) y_final = std::move(full);
  };

  try {
    sup.run_phase("partition", partition_body);
    out.clock_us[0] = machine.max_virtual_time_us();
    sup.run_phase("inspect", inspect_body);
    out.clock_us[1] = machine.max_virtual_time_us();
    sup.run_phase("execute", execute_body);
    out.clock_us[2] = machine.max_virtual_time_us();
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  out.stats = sup.stats();
  out.warm_allocs = warm_end - warm_start;
  out.y = std::move(y_final);
  return out;
}

bool bitwise_same(const PipelineRun& a, const PipelineRun& b) {
  return std::memcmp(a.clock_us, b.clock_us, sizeof(a.clock_us)) == 0 &&
         a.y.size() == b.y.size() &&
         std::memcmp(a.y.data(), b.y.data(), a.y.size() * sizeof(f64)) == 0;
}

struct SoakTotals {
  i64 fired_seeds = 0;
  i64 retries = 0;
  i64 recoveries = 0;
  i64 messages_drained = 0;
  f64 backoff_wall_ms = 0.0;
  i64 by_kind[3] = {0, 0, 0};            // Throw / Stall / AllocFail
  i64 by_site[rt::kFaultSiteCount] = {};  // fired seeds per site
  i64 failures = 0;                      // seeds violating any per-seed gate
};

}  // namespace

int main() {
  std::printf("Ablation R: chaos soak — recovery under seeded transient "
              "faults\n\n");

  const auto w = bench::workload_mesh_tiny();
  rt::Machine machine(kProcs);
  rt::RetryPolicy policy{.max_attempts = 4,
                         .base_backoff_ms = 0.25,
                         .multiplier = 2.0,
                         .max_backoff_ms = 2.0};

  // --- clean baseline --------------------------------------------------------
  const PipelineRun clean = run_pipeline(machine, w, policy);
  if (!clean.ok) {
    std::fprintf(stderr, "FAIL: clean run failed: %s\n", clean.error.c_str());
    return 1;
  }
  std::printf("clean: partition %.6f us  inspect %.6f us  execute %.6f us  "
              "warm-sweep allocs %lld\n\n",
              clean.clock_us[0], clean.clock_us[1], clean.clock_us[2],
              clean.warm_allocs);

  // --- the soak --------------------------------------------------------------
  // Seeded (site, kind, rank, nth-visit) tuples from a splitmix64 chain.
  // Visit ranges are sized per site so the spec usually lands inside a real
  // visit sequence; a seed whose visit is never reached simply runs clean
  // (and still must be bit-identical). Stall seeds arm the watchdog.
  static constexpr rt::FaultKind kKinds[3] = {
      rt::FaultKind::Throw, rt::FaultKind::Stall, rt::FaultKind::AllocFail};
  static constexpr u64 kNthRange[rt::kFaultSiteCount] = {
      40,  // BarrierArrive: every phase of every collective
      12,  // BlackboardPublish: pointer-mode collectives
      1,   // MailboxPut: one heartbeat send per rank per execute attempt
      1,   // MailboxRecv
      10,  // Alltoall: counts rounds (exchange_csr, redistribute, locate)
      8,   // AlltoallvFlat: payload rounds
  };

  SoakTotals totals;
  i64 max_attempts_seen = 0;
  for (int s = 0; s < kSeeds; ++s) {
    u64 z = 0xC0FFEEull + static_cast<u64>(s) * 0x9e3779b97f4a7c15ull;
    auto next = [&z] { return z = splitmix64(z); };
    const int site_i = static_cast<int>(next() % rt::kFaultSiteCount);
    const int kind_i = static_cast<int>(next() % 3);
    const int rank = static_cast<int>(next() % kProcs);
    const u64 nth = 1 + next() % kNthRange[site_i];

    rt::FaultPlan plan(kProcs, z);
    plan.add({static_cast<rt::FaultSite>(site_i), kKinds[kind_i], rank, nth,
              0.0});
    machine.install_fault_plan(&plan);
    if (kKinds[kind_i] == rt::FaultKind::Stall) {
      machine.set_deadline_sec(kStallDeadlineSec);
    }
    const PipelineRun r = run_pipeline(machine, w, policy);
    machine.install_fault_plan(nullptr);
    machine.set_deadline_sec(0.0);

    const i64 fired = plan.fired();
    const bool identical = bitwise_same(r, clean);
    // A single-shot fault fails exactly one attempt, so a fired seed must
    // show exactly one retry and one recovery; an unfired seed none.
    const bool bounded = r.stats.retries == (fired > 0 ? 1 : 0) &&
                         r.stats.recoveries == r.stats.retries &&
                         r.stats.gave_up == 0;
    const bool seed_ok = r.ok && identical && bounded;
    if (!seed_ok) {
      ++totals.failures;
      std::fprintf(stderr,
                   "FAIL seed %d: site=%s kind=%s rank=%d nth=%llu — ok=%d "
                   "identical=%d fired=%lld retries=%lld recoveries=%lld "
                   "gave_up=%lld%s%s\n",
                   s, rt::fault_site_name(static_cast<rt::FaultSite>(site_i)),
                   rt::fault_kind_name(kKinds[kind_i]), rank,
                   static_cast<unsigned long long>(nth), r.ok ? 1 : 0,
                   identical ? 1 : 0, static_cast<long long>(fired),
                   static_cast<long long>(r.stats.retries),
                   static_cast<long long>(r.stats.recoveries),
                   static_cast<long long>(r.stats.gave_up),
                   r.error.empty() ? "" : " error=",
                   r.error.empty() ? "" : r.error.c_str());
    }
    if (fired > 0) {
      ++totals.fired_seeds;
      ++totals.by_kind[kind_i];
      ++totals.by_site[site_i];
    }
    totals.retries += r.stats.retries;
    totals.recoveries += r.stats.recoveries;
    totals.messages_drained += r.stats.messages_drained;
    totals.backoff_wall_ms += r.stats.backoff_wall_ms;
    if (r.stats.attempts > max_attempts_seen) {
      max_attempts_seen = r.stats.attempts;
    }
    if ((s + 1) % 40 == 0) {
      std::printf("  soak %3d/%d: %lld fired, %lld recovered, %lld drained "
                  "messages, 0 divergences so far: %s\n",
                  s + 1, kSeeds, static_cast<long long>(totals.fired_seeds),
                  static_cast<long long>(totals.recoveries),
                  static_cast<long long>(totals.messages_drained),
                  totals.failures == 0 ? "yes" : "NO");
    }
  }

  // --- post-soak health ------------------------------------------------------
  // The same machine, after every recovery of the soak, must still produce
  // the baseline bit for bit with zero warm-sweep allocations.
  const PipelineRun after = run_pipeline(machine, w, policy);

  std::printf("\nsoak: %lld/%d seeds fired (Throw %lld, Stall %lld, AllocFail "
              "%lld), %lld retries, %lld recoveries, %lld stale messages "
              "drained, %.1f ms backoff wall-clock\n",
              static_cast<long long>(totals.fired_seeds), kSeeds,
              static_cast<long long>(totals.by_kind[0]),
              static_cast<long long>(totals.by_kind[1]),
              static_cast<long long>(totals.by_kind[2]),
              static_cast<long long>(totals.retries),
              static_cast<long long>(totals.recoveries),
              static_cast<long long>(totals.messages_drained),
              totals.backoff_wall_ms);

  // --- JSON ------------------------------------------------------------------
  if (std::FILE* f = std::fopen("BENCH_recovery.json", "w")) {
    std::fprintf(f, "{\n  \"bench\": \"recovery\",\n");
    std::fprintf(f, "  \"procs\": %d,\n  \"sweeps\": %d,\n  \"seeds\": %d,\n",
                 kProcs, kSweeps, kSeeds);
    std::fprintf(f,
                 "  \"clean\": {\"partition_us\": %.17g, \"inspect_us\": "
                 "%.17g, \"execute_us\": %.17g, \"warm_sweep_allocs\": "
                 "%lld},\n",
                 clean.clock_us[0], clean.clock_us[1], clean.clock_us[2],
                 clean.warm_allocs);
    std::fprintf(f,
                 "  \"soak\": {\"fired_seeds\": %lld, \"retries\": %lld, "
                 "\"recoveries\": %lld, \"messages_drained\": %lld, "
                 "\"backoff_wall_ms\": %.3f, \"max_attempts_per_seed\": %lld, "
                 "\"failures\": %lld,\n",
                 static_cast<long long>(totals.fired_seeds),
                 static_cast<long long>(totals.retries),
                 static_cast<long long>(totals.recoveries),
                 static_cast<long long>(totals.messages_drained),
                 totals.backoff_wall_ms,
                 static_cast<long long>(max_attempts_seen),
                 static_cast<long long>(totals.failures));
    std::fprintf(f, "    \"fired_by_kind\": {\"Throw\": %lld, \"Stall\": "
                 "%lld, \"AllocFail\": %lld},\n",
                 static_cast<long long>(totals.by_kind[0]),
                 static_cast<long long>(totals.by_kind[1]),
                 static_cast<long long>(totals.by_kind[2]));
    std::fprintf(f, "    \"fired_by_site\": {");
    for (int i = 0; i < rt::kFaultSiteCount; ++i) {
      std::fprintf(f, "\"%s\": %lld%s",
                   rt::fault_site_name(static_cast<rt::FaultSite>(i)),
                   static_cast<long long>(totals.by_site[i]),
                   i + 1 < rt::kFaultSiteCount ? ", " : "");
    }
    std::fprintf(f, "}},\n");
    std::fprintf(f,
                 "  \"post_soak\": {\"bitwise_identical\": %s, "
                 "\"warm_sweep_allocs\": %lld}\n}\n",
                 (after.ok && bitwise_same(after, clean)) ? "true" : "false",
                 after.warm_allocs);
    std::fclose(f);
    std::printf("wrote BENCH_recovery.json\n");
  }

  // --- hard gates ------------------------------------------------------------
  int rc = 0;
  if (totals.failures > 0) {
    std::fprintf(stderr, "FAIL: %lld/%d seeds diverged from the clean run or "
                 "exceeded the retry bound\n",
                 static_cast<long long>(totals.failures), kSeeds);
    rc = 1;
  }
  // The soak must actually exercise the recovery path, not vacuously pass.
  if (totals.fired_seeds < kSeeds / 2) {
    std::fprintf(stderr, "FAIL: only %lld/%d seeds fired — visit ranges miss "
                 "the real visit sequences, the soak is vacuous\n",
                 static_cast<long long>(totals.fired_seeds), kSeeds);
    rc = 1;
  }
  for (int i = 0; i < 3; ++i) {
    if (totals.by_kind[i] == 0) {
      std::fprintf(stderr, "FAIL: no seed fired a %s fault\n",
                   rt::fault_kind_name(kKinds[i]));
      rc = 1;
    }
  }
  if (clean.warm_allocs != 0) {
    std::fprintf(stderr, "FAIL: clean warm sweeps performed %lld heap "
                 "allocations (want 0)\n",
                 clean.warm_allocs);
    rc = 1;
  }
  if (!after.ok || !bitwise_same(after, clean) || after.warm_allocs != 0) {
    std::fprintf(stderr, "FAIL: post-soak clean run diverged (ok=%d, "
                 "identical=%d, warm allocs %lld) — the soak corrupted the "
                 "machine\n",
                 after.ok ? 1 : 0, bitwise_same(after, clean) ? 1 : 0,
                 after.warm_allocs);
    rc = 1;
  }
  if (rc == 0) {
    std::printf("\nPASS: every fault recovered within one retry; final "
                "arrays and per-phase modeled clocks bit-identical to the "
                "clean run; warm sweeps allocation-free\n");
  }
  return rc;
}
