// Table 4 of the paper: naive BLOCK (HPF) partitioning with schedule reuse —
// per-phase breakdown. The point of the table: with contiguous blocks of an
// irregularly numbered mesh, the executor pays 2-3x more communication than
// with RCB/RSB (compare Table 3), which is the paper's case for irregular
// distributions.
#include <cstdio>

#include "bench/common.hpp"

namespace bench = chaos::bench;
using chaos::f64;

namespace {

// Machine-total robustness tally across every pipeline the table runs
// (printed by the footer; all-zero on a healthy bench).
chaos::bench::RobustnessTally g_tally;

struct PaperColumn {
  f64 inspector, remap, executor, total;
};

void run_workload(const bench::Workload& w, const int (&procs)[3],
                  const PaperColumn (&paper)[3]) {
  std::vector<std::string> headers;
  std::vector<bench::PhaseResult> results;
  for (int k = 0; k < 3; ++k) {
    bench::PipelineConfig cfg;
    cfg.partitioner = "HPF-BLOCK";
    cfg.iterations = 100;
    cfg.schedule_reuse = true;
    results.push_back(bench::run_hand_pipeline(procs[k], w, cfg));
    g_tally.add(results.back());
    headers.push_back("P=" + std::to_string(procs[k]));
  }
  bench::print_header("Table 4 — " + w.name + " (BLOCK + schedule reuse)",
                      headers);
  auto row = [&](const char* label, auto measure, auto paperv) {
    std::vector<f64> m, pv;
    for (int k = 0; k < 3; ++k) {
      m.push_back(measure(results[static_cast<std::size_t>(k)]));
      pv.push_back(paperv(paper[k]));
    }
    bench::print_row(label, m, pv);
  };
  row("Inspector", [](const bench::PhaseResult& r) { return r.inspector; },
      [](const PaperColumn& c) { return c.inspector; });
  row("Remap", [](const bench::PhaseResult& r) { return r.remap; },
      [](const PaperColumn& c) { return c.remap; });
  row("Executor (100x)",
      [](const bench::PhaseResult& r) { return r.executor; },
      [](const PaperColumn& c) { return c.executor; });
  row("Total", [](const bench::PhaseResult& r) { return r.total(); },
      [](const PaperColumn& c) { return c.total; });
  std::fflush(stdout);
}

}  // namespace

int main() {
  std::printf("Table 4: BLOCK partitioning with schedule reuse\n");

  const auto mesh10k = bench::workload_mesh_10k();
  const int p10k[3] = {4, 8, 16};
  const PaperColumn paper10k[3] = {{1.5, 3.1, 26.0, 30.4},
                                   {0.9, 1.6, 20.8, 23.3},
                                   {0.5, 0.8, 14.7, 16.0}};
  run_workload(mesh10k, p10k, paper10k);

  const auto mesh53k = bench::workload_mesh_53k();
  const int p53k[3] = {16, 32, 64};
  const PaperColumn paper53k[3] = {{3.9, 4.9, 74.1, 82.9},
                                   {1.9, 2.8, 54.7, 59.4},
                                   {1.0, 1.7, 35.3, 38.0}};
  run_workload(mesh53k, p53k, paper53k);

  const auto md = bench::workload_md_648();
  const int pmd[3] = {4, 8, 16};
  const PaperColumn papermd[3] = {{2.7, 4.5, 10.3, 17.5},
                                  {1.5, 2.6, 7.6, 11.7},
                                  {0.8, 1.5, 7.3, 9.6}};
  run_workload(md, pmd, papermd);

  std::printf("\nshape check (paper): BLOCK executor is 2-3x slower than "
              "RCB's (Table 3) on the meshes; totals 38-83s vs 17-30s on the "
              "53K mesh.\n");
  bench::print_footer(g_tally);
  return 0;
}
