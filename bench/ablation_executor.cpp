// Ablation C: executor memory layout. The executor (Phase E of Figure 2)
// runs every timestep through a reused schedule, so its per-sweep cost is
// the whole point of the inspector/executor split. Two layouts of the same
// gather + scatter-reduce sweep:
//   nested — the seed's layout: per-destination std::vector pack buffers and
//            the nested-vector rt::alltoallv, reallocated on every call;
//   csr_ws — the CSR-flattened CommSchedule driven through a reusable
//            ExecutorWorkspace and rt::alltoallv_flat (this PR).
// Measured per config: element throughput (machine-total gather+scatter
// elements per host wall second) and heap allocations per sweep per rank,
// counted by a global operator new hook — the csr_ws layout must come out
// at exactly zero after its first (warmup) sweep. Results go to
// BENCH_executor.json so the perf trajectory is tracked from PR to PR.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "workload/rng.hpp"

// --- global allocation counter ----------------------------------------------
// Replacing the global operator new/delete in this TU hooks every heap
// allocation in the binary (the chaos library is static). Counting is
// relaxed-atomic: the bench only reads the counter between barriers, when
// all ranks are quiescent.

namespace {
std::atomic<long long> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace bench = chaos::bench;
namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
using chaos::f64;
using chaos::i64;

namespace {

// --- the seed's nested-vector movers, kept verbatim as the baseline --------

void gather_nested(rt::Process& p, const core::CommSchedule& schedule,
                   std::span<const f64> local, std::span<f64> ghost) {
  std::vector<std::vector<f64>> outgoing(
      static_cast<std::size_t>(schedule.nprocs()));
  i64 packed = 0;
  for (int d = 0; d < schedule.nprocs(); ++d) {
    auto seg = schedule.send_to(d);
    outgoing[static_cast<std::size_t>(d)].reserve(seg.size());
    for (i64 l : seg) {
      outgoing[static_cast<std::size_t>(d)].push_back(
          local[static_cast<std::size_t>(l)]);
      ++packed;
    }
  }
  auto incoming = rt::alltoallv(p, outgoing);
  i64 slot = 0;
  for (const auto& block : incoming) {
    for (f64 v : block) ghost[static_cast<std::size_t>(slot++)] = v;
  }
  p.clock().charge_ops(packed + slot, p.params().mem_us_per_word);
}

void scatter_nested(rt::Process& p, const core::CommSchedule& schedule,
                    std::span<f64> local, std::span<const f64> ghost,
                    core::ReduceOp op) {
  std::vector<std::vector<f64>> outgoing(
      static_cast<std::size_t>(schedule.nprocs()));
  i64 slot = 0;
  for (int s = 0; s < schedule.nprocs(); ++s) {
    const i64 c = schedule.recv_count(s);
    outgoing[static_cast<std::size_t>(s)].reserve(static_cast<std::size_t>(c));
    for (i64 k = 0; k < c; ++k) {
      outgoing[static_cast<std::size_t>(s)].push_back(
          ghost[static_cast<std::size_t>(slot++)]);
    }
  }
  auto incoming = rt::alltoallv(p, outgoing);
  i64 applied = 0;
  for (int d = 0; d < schedule.nprocs(); ++d) {
    auto seg = schedule.send_to(d);
    const auto& block = incoming[static_cast<std::size_t>(d)];
    for (std::size_t k = 0; k < seg.size(); ++k) {
      f64& dst = local[static_cast<std::size_t>(seg[k])];
      dst = core::apply_reduce(op, dst, block[k]);
      ++applied;
    }
  }
  p.clock().charge_ops(slot + applied, p.params().mem_us_per_word);
  p.clock().charge_ops(applied, p.params().flop_us);
}

// --- configs ----------------------------------------------------------------

struct ConfigResult {
  std::string workload;
  std::string layout;  // "nested" or "csr_ws"
  int procs = 0;
  int sweeps = 0;
  i64 ghost_total = 0;     // machine-total ghost slots (one gather's volume)
  i64 elements_total = 0;  // machine-total elements moved over all sweeps
  f64 wall_seconds = 0.0;  // barrier-fenced sweep loop only
  f64 elems_per_sec = 0.0;
  f64 allocs_per_sweep_per_rank = 0.0;
  f64 modeled_seconds = 0.0;
  i64 alltoallv_bytes = 0;  // modeled off-process payload over all sweeps
};

constexpr int kSweeps = 40;

/// One layout run: localize @p make_refs's references against a BLOCK
/// distribution of @p nnodes, warm up one sweep, then time kSweeps fenced
/// gather+scatter sweeps while counting heap allocations.
template <typename MakeRefs>
ConfigResult run_config(const std::string& workload, const std::string& layout,
                        int procs, i64 nnodes, MakeRefs&& make_refs) {
  ConfigResult r;
  r.workload = workload;
  r.layout = layout;
  r.procs = procs;
  r.sweeps = kSweeps;
  const bool csr = layout == "csr_ws";

  rt::Machine& machine = bench::pooled_machine(procs);
  machine.run([&](rt::Process& p) {
    auto d = dist::Distribution::block(p, nnodes);
    const std::vector<i64> refs = make_refs(p);
    auto loc = core::localize(p, *d, refs);

    dist::DistributedArray<f64> x(p, d, 1.0);
    x.fill_by_global([](i64 g) { return static_cast<f64>(g % 97); });
    x.resize_ghost(loc.schedule.nghost);
    core::ExecutorWorkspace<f64> ws;
    std::vector<f64> acc(static_cast<std::size_t>(loc.schedule.nghost), 0.25);

    const i64 ghost_total = rt::allreduce_sum(p, loc.schedule.nghost);

    // Warmup sweep: sizes the workspace (csr_ws) / faults in the allocator
    // arenas (nested) so the measured window is steady state.
    if (csr) {
      core::gather_ghosts<f64>(p, loc.schedule, x.local(), x.ghost(), ws);
      core::scatter_reduce<f64>(p, loc.schedule, x.local(), acc,
                                core::ReduceOp::Add, ws);
    } else {
      gather_nested(p, loc.schedule, x.local(), x.ghost());
      scatter_nested(p, loc.schedule, x.local(), acc, core::ReduceOp::Add);
    }

    rt::barrier(p);
    const long long allocs0 = g_heap_allocs.load(std::memory_order_relaxed);
    const auto w0 = std::chrono::steady_clock::now();
    rt::ClockSection section(p.clock());
    const i64 bytes0 = p.stats().alltoallv_bytes;
    for (int sweep = 0; sweep < kSweeps; ++sweep) {
      if (csr) {
        core::gather_ghosts<f64>(p, loc.schedule, x.local(), x.ghost(), ws);
        core::scatter_reduce<f64>(p, loc.schedule, x.local(), acc,
                                  core::ReduceOp::Add, ws);
      } else {
        gather_nested(p, loc.schedule, x.local(), x.ghost());
        scatter_nested(p, loc.schedule, x.local(), acc, core::ReduceOp::Add);
      }
    }
    rt::barrier(p);
    const f64 modeled = rt::allreduce_max(p, section.elapsed_sec());
    const i64 my_bytes = p.stats().alltoallv_bytes - bytes0;
    const i64 bytes_total = rt::allreduce_sum(p, my_bytes);
    if (p.is_root()) {
      r.wall_seconds =
          std::chrono::duration<f64>(std::chrono::steady_clock::now() - w0)
              .count();
      const long long allocs1 = g_heap_allocs.load(std::memory_order_relaxed);
      r.allocs_per_sweep_per_rank =
          static_cast<f64>(allocs1 - allocs0) /
          (static_cast<f64>(kSweeps) * static_cast<f64>(procs));
      r.ghost_total = ghost_total;
      // One sweep moves every ghost slot twice: out on the gather, back on
      // the scatter.
      r.elements_total = 2 * ghost_total * kSweeps;
      r.modeled_seconds = modeled;
      r.alltoallv_bytes = bytes_total;
    }
  });
  r.elems_per_sec = r.wall_seconds > 0
                        ? static_cast<f64>(r.elements_total) / r.wall_seconds
                        : 0.0;
  return r;
}

std::vector<i64> mesh_endpoint_refs(rt::Process& p, const bench::Workload& w) {
  // The executor's real reference stream: both endpoints of my block of
  // edges (same slicing as the hand pipeline's Phase D input).
  auto edist = dist::Distribution::block(p, w.nedges);
  std::vector<i64> refs;
  refs.reserve(static_cast<std::size_t>(2 * edist->my_local_size()));
  for (i64 l = 0; l < edist->my_local_size(); ++l) {
    const i64 e = edist->global_of(p.rank(), l);
    refs.push_back(w.e1[static_cast<std::size_t>(e)]);
    refs.push_back(w.e2[static_cast<std::size_t>(e)]);
  }
  return refs;
}

bool write_json(const std::vector<ConfigResult>& results) {
  std::FILE* f = std::fopen("BENCH_executor.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_executor.json for writing\n");
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"executor_gather_scatter\",\n");
  std::fprintf(f, "  \"sweeps\": %d,\n", kSweeps);
  std::fprintf(f, "  \"configs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    // The nested row with the same (workload, procs) is this row's baseline.
    f64 speedup = 0.0;
    for (const auto& base : results) {
      if (base.layout == "nested" && base.workload == r.workload &&
          base.procs == r.procs && base.elems_per_sec > 0) {
        speedup = r.elems_per_sec / base.elems_per_sec;
      }
    }
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"layout\": \"%s\", "
                 "\"procs\": %d, \"ghost_total\": %lld, "
                 "\"elements_total\": %lld, \"wall_seconds\": %.6f, "
                 "\"elems_per_sec_wall\": %.0f, "
                 "\"allocs_per_sweep_per_rank\": %.2f, "
                 "\"modeled_seconds\": %.6f, "
                 "\"alltoallv_bytes_modeled\": %lld, "
                 "\"speedup_vs_nested\": %.3f}%s\n",
                 r.workload.c_str(), r.layout.c_str(), r.procs,
                 static_cast<long long>(r.ghost_total),
                 static_cast<long long>(r.elements_total), r.wall_seconds,
                 r.elems_per_sec, r.allocs_per_sweep_per_rank,
                 r.modeled_seconds,
                 static_cast<long long>(r.alltoallv_bytes), speedup,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

void print_result(const ConfigResult& r) {
  std::printf("%-18s %-8s P=%-3d %10lld ghosts %12.0f elems/s %8.2f "
              "allocs/sweep/rank %10.3f s wall\n",
              r.workload.c_str(), r.layout.c_str(), r.procs,
              static_cast<long long>(r.ghost_total), r.elems_per_sec,
              r.allocs_per_sweep_per_rank, r.wall_seconds);
  std::fflush(stdout);
}

}  // namespace

int main() {
  std::printf("Ablation C: executor layout — nested-vector schedule vs "
              "CSR + reusable workspace\n");
  std::printf("%d gather+scatter sweeps per config, barrier-fenced; heap "
              "allocations counted globally\n\n",
              kSweeps);

  std::vector<ConfigResult> results;

  // 53K mesh at P=16: the paper's large workload, endpoints against the
  // BLOCK node distribution.
  {
    const auto w = bench::workload_mesh_53k();
    for (const char* layout : {"nested", "csr_ws"}) {
      results.push_back(run_config(
          "53k_mesh", layout, 16, w.nnodes,
          [&](rt::Process& p) { return mesh_endpoint_refs(p, w); }));
      print_result(results.back());
    }
  }

  // Synthetic P=64: uniform random references, ~63/64 off-process — the
  // high-rank-count stress the 53K mesh cannot produce at P=16.
  {
    constexpr i64 kNodes = 1 << 17;
    constexpr i64 kRefsPerRank = 24 * 1024;
    for (const char* layout : {"nested", "csr_ws"}) {
      results.push_back(run_config(
          "synthetic_p64", layout, 64, kNodes, [&](rt::Process& p) {
            chaos::wl::Rng rng(911 + static_cast<chaos::u64>(p.rank()) * 131);
            std::vector<i64> refs(static_cast<std::size_t>(kRefsPerRank));
            for (auto& v : refs) v = rng.below(kNodes);
            return refs;
          }));
      print_result(results.back());
    }
  }

  if (write_json(results)) std::printf("\nwrote BENCH_executor.json\n");

  // Hard gates this PR claims (checked here so CI smoke fails loudly).
  int rc = 0;
  for (const auto& r : results) {
    if (r.layout == "csr_ws" && r.allocs_per_sweep_per_rank != 0.0) {
      std::fprintf(stderr,
                   "FAIL: %s csr_ws performed %.2f heap allocations per "
                   "sweep per rank (want 0)\n",
                   r.workload.c_str(), r.allocs_per_sweep_per_rank);
      rc = 1;
    }
  }
  for (const auto& r : results) {
    if (r.layout != "csr_ws" || r.workload != "53k_mesh") continue;
    for (const auto& base : results) {
      if (base.layout == "nested" && base.workload == r.workload &&
          base.elems_per_sec > 0 &&
          r.elems_per_sec < 1.3 * base.elems_per_sec) {
        std::fprintf(stderr,
                     "FAIL: 53k_mesh csr_ws throughput %.0f elems/s is under "
                     "1.3x the nested baseline %.0f\n",
                     r.elems_per_sec, base.elems_per_sec);
        rc = 1;
      }
    }
  }
  if (rc == 0) {
    std::printf("\nPASS: csr_ws is allocation-free per sweep and >=1.3x "
                "nested throughput on the 53K mesh\n");
  }
  return rc;
}
